"""Tests for the workload substrate: generators, models, registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.trace.stats import access_skew, compute_stats
from repro.units import MB
from repro.workloads import generators as g
from repro.workloads.base import (
    PatternSpec,
    PhaseSpec,
    SyntheticWorkload,
    rotate_permutation,
)
from repro.workloads.npb import NPB_FOOTPRINTS_MB, npb_workload
from repro.workloads.registry import available_workloads, generate_trace, get_workload
from repro.workloads.server import pgbench_workload
from repro.workloads.spec import spec2006_mixture, spec_workload

RNG = lambda seed=0: np.random.default_rng(seed)
FOOTPRINT = 8 * MB


class TestGenerators:
    def test_addresses_in_footprint(self):
        for fn in (
            lambda: g.zipf_hot(1000, FOOTPRINT, RNG()),
            lambda: g.sequential_stream(1000, FOOTPRINT, RNG()),
            lambda: g.uniform_random(1000, FOOTPRINT, RNG()),
            lambda: g.pointer_chase(1000, FOOTPRINT, RNG()),
            lambda: g.gaussian_cluster(1000, FOOTPRINT, RNG(), center_block=10, sigma_blocks=3.0),
            lambda: g.transactional(1000, FOOTPRINT, RNG()),
            lambda: g.stream_with_hot(
                1000, FOOTPRINT, RNG(), permutation=g.make_hot_permutation(FOOTPRINT, RNG())
            ),
        ):
            addr = fn()
            assert addr.shape == (1000,)
            assert addr.min() >= 0 and addr.max() < FOOTPRINT
            assert (addr % 64 == 0).all()

    def test_zipf_skew_grows_with_alpha(self):
        perm = g.make_hot_permutation(FOOTPRINT, RNG())
        from repro.trace.record import make_chunk

        flat = make_chunk(g.zipf_hot(20000, FOOTPRINT, RNG(1), alpha=1.05, permutation=perm))
        steep = make_chunk(g.zipf_hot(20000, FOOTPRINT, RNG(1), alpha=2.0, permutation=perm))
        assert access_skew(steep, 4096) > access_skew(flat, 4096)

    def test_zipf_spread_limits_block_hotspots(self):
        perm = g.make_hot_permutation(FOOTPRINT, RNG())
        tight = g.zipf_hot(20000, FOOTPRINT, RNG(1), alpha=1.8, permutation=perm)
        spread = g.zipf_hot(
            20000, FOOTPRINT, RNG(1), alpha=1.8, permutation=perm, spread_blocks=64
        )
        def max_block_share(addr):
            _, c = np.unique(addr // 4096, return_counts=True)
            return c.max() / addr.shape[0]
        assert max_block_share(spread) < max_block_share(tight)

    def test_zipf_rejects_bad_alpha(self):
        with pytest.raises(WorkloadError):
            g.zipf_hot(10, FOOTPRINT, RNG(), alpha=1.0)

    def test_stream_is_sequential(self):
        addr = g.sequential_stream(100, FOOTPRINT, RNG(), start_block=0)
        blocks = addr // 4096
        assert (np.diff(blocks) == 1).all()

    def test_stream_wraps(self):
        n_blocks = FOOTPRINT // 4096
        addr = g.sequential_stream(n_blocks + 10, FOOTPRINT, RNG(), start_block=0)
        assert (addr[n_blocks:] // 4096 == np.arange(10)).all()

    def test_stream_rejects_zero_stride(self):
        with pytest.raises(WorkloadError):
            g.sequential_stream(10, FOOTPRINT, RNG(), stride_blocks=0)

    def test_cluster_is_clustered(self):
        addr = g.gaussian_cluster(5000, FOOTPRINT, RNG(), center_block=100, sigma_blocks=5.0)
        blocks = addr // 4096
        assert np.abs(np.median(blocks) - 100) < 20

    def test_clustered_permutation_keeps_rank_neighbours_adjacent(self):
        perm = g.make_hot_permutation(FOOTPRINT, RNG(), cluster_blocks=64)
        # within a cluster of ranks, blocks are contiguous
        assert (np.diff(perm[:64]) == 1).all()
        assert perm.shape[0] == FOOTPRINT // 4096
        assert sorted(perm.tolist()) == list(range(FOOTPRINT // 4096))

    def test_transactional_rotation_changes_hot_partitions(self):
        a = g.transactional(5000, FOOTPRINT, RNG(1), rotate_partitions=True)
        b = g.transactional(5000, FOOTPRINT, RNG(2), rotate_partitions=True)
        ua, ca = np.unique(a // (FOOTPRINT // 16), return_counts=True)
        ub, cb = np.unique(b // (FOOTPRINT // 16), return_counts=True)
        assert ua[np.argmax(ca)] != ub[np.argmax(cb)] or ca.max() != cb.max()

    def test_mix_weights_validated(self):
        with pytest.raises(WorkloadError):
            g.mix(10, RNG(), [])
        with pytest.raises(WorkloadError):
            g.mix(10, RNG(), [(-1.0, np.zeros(10, dtype=np.int64))])

    def test_mix_interleaves(self):
        a = np.zeros(100, dtype=np.int64)
        b = np.full(100, 64, dtype=np.int64)
        out = g.mix(100, RNG(), [(1.0, a), (1.0, b)])
        assert 20 < (out == 0).sum() < 80


class TestRotatePermutation:
    def test_zero_fraction_is_identity(self):
        perm = np.arange(100)
        assert rotate_permutation(perm, 0.0, RNG()) is perm

    @given(st.floats(min_value=0.01, max_value=1.0), st.integers(0, 100))
    @settings(max_examples=25)
    def test_stays_a_permutation(self, fraction, seed):
        perm = RNG(seed).permutation(64)
        out = rotate_permutation(perm, fraction, RNG(seed + 1))
        assert sorted(out.tolist()) == list(range(64))


class TestSyntheticWorkload:
    def test_reproducible_by_seed(self):
        wl = pgbench_workload(footprint_bytes=FOOTPRINT)
        a = wl.generate(2000, seed=42)
        b = wl.generate(2000, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        wl = pgbench_workload(footprint_bytes=FOOTPRINT)
        assert wl.generate(2000, seed=1) != wl.generate(2000, seed=2)

    def test_trace_is_valid(self):
        wl = npb_workload("FT.C", footprint_bytes=FOOTPRINT)
        chunk = wl.generate(3000, seed=0)
        chunk.validate()
        assert len(chunk) == 3000
        assert chunk.addr.max() < FOOTPRINT

    def test_write_fraction_approximate(self):
        wl = npb_workload("IS.C", footprint_bytes=FOOTPRINT)  # 50% writes
        s = compute_stats(wl.generate(20000, seed=0))
        assert 0.45 < s.write_fraction < 0.55

    def test_mean_gap_matches_cycles_per_access(self):
        wl = pgbench_workload(footprint_bytes=FOOTPRINT)
        chunk = wl.generate(50000, seed=0)
        mean_gap = float(np.diff(chunk.time).mean())
        assert 0.7 * wl.cycles_per_access < mean_gap < 1.3 * wl.cycles_per_access

    def test_cpu_ids_within_range(self):
        wl = npb_workload("MG.C", footprint_bytes=FOOTPRINT)
        chunk = wl.generate(1000, seed=0)
        assert chunk.cpu.min() >= 0 and chunk.cpu.max() < wl.n_cpus

    def test_with_footprint(self):
        wl = npb_workload("FT.C").with_footprint(FOOTPRINT)
        assert wl.footprint_bytes == FOOTPRINT
        with pytest.raises(WorkloadError):
            wl.with_footprint(1)

    def test_needs_a_phase(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload("x", FOOTPRINT, phases=())

    def test_burst_model_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload(
                "x",
                FOOTPRINT,
                phases=(PhaseSpec(PatternSpec("random")),),
                cycles_per_access=2.0,
                burst_fraction=0.9,
                burst_gap=3.0,
            )

    def test_zero_accesses(self):
        wl = npb_workload("EP.C", footprint_bytes=FOOTPRINT)
        assert len(wl.generate(0)) == 0


class TestRegistry:
    def test_table1_footprints_verbatim(self):
        assert NPB_FOOTPRINTS_MB["FT.C"] == 5147
        assert NPB_FOOTPRINTS_MB["DC.B"] == 5876
        assert NPB_FOOTPRINTS_MB["MG.C"] == 3426
        under_1gb = sum(1 for mb in NPB_FOOTPRINTS_MB.values() if mb < 1024)
        assert under_1gb == 7  # "7 out of the total 10 workloads"

    def test_all_names_resolvable(self):
        for name in available_workloads():
            chunk = generate_trace(name, 500, seed=0, footprint_bytes=FOOTPRINT)
            assert len(chunk) == 500

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("nonsense")

    def test_spec2006_is_mixture_only(self):
        with pytest.raises(WorkloadError):
            get_workload("SPEC2006")

    def test_mixture_has_four_cpus_and_disjoint_regions(self):
        chunk = spec2006_mixture(4000, seed=0, total_footprint_bytes=32 * MB)
        assert set(np.unique(chunk.cpu)) == {0, 1, 2, 3}
        for cpu in range(4):
            mine = chunk.addr[chunk.cpu == cpu]
            others = chunk.addr[chunk.cpu != cpu]
            assert len(np.intersect1d(mine // (1 << 20), others // (1 << 20))) == 0

    def test_spec_program_unknown(self):
        with pytest.raises(WorkloadError):
            spec_workload("rust_compiler")
