"""The OS-assisted scheme (Section III-B): fine granularities pay a
user/kernel round trip per table update, stretching the swap."""

import numpy as np

from repro.address import AddressMap
from repro.config import MigrationConfig
from repro.migration.engine import MigrationEngine
from repro.units import KB, MB


def engine_for(page_bytes: int) -> MigrationEngine:
    amap = AddressMap(
        total_bytes=64 * MB, onpkg_bytes=8 * MB,
        macro_page_bytes=page_bytes, subblock_bytes=4 * KB,
    )
    cfg = MigrationConfig(
        algorithm="live", macro_page_bytes=page_bytes, subblock_bytes=4 * KB,
        swap_interval=1000,
    )
    return MigrationEngine(amap, cfg)


def trigger(engine: MigrationEngine, page: int, now: int = 0):
    engine.observe_epoch(
        slots=np.array([], dtype=np.int64),
        slot_times=np.array([], dtype=np.int64),
        offpkg_pages=np.full(5, page, dtype=np.int64),
        off_times=np.arange(5, dtype=np.int64),
        off_subblocks=np.zeros(5, dtype=np.int64),
    )
    return engine.maybe_swap(now)


def test_fine_granularity_is_os_assisted():
    assert engine_for(64 * KB).config.os_assisted
    assert not engine_for(1 * MB).config.os_assisted


def test_os_updates_stretch_the_swap():
    """Same plan shape at 64 KB pages: the OS-assisted engine's swap ends
    later by (updates x 127) cycles than a hypothetical pure-HW one."""
    e = engine_for(64 * KB)
    hot = e.amap.n_onpkg_pages + 3
    assert trigger(e, hot).triggered
    os_end = e.active.end

    e_hw = engine_for(64 * KB)
    # force the pure-hardware cost model for comparison
    object.__setattr__(e_hw.config, "hw_min_page_bytes", 4 * KB)
    assert not e_hw.config.os_assisted
    hot2 = e_hw.amap.n_onpkg_pages + 3
    assert trigger(e_hw, hot2).triggered
    hw_end = e_hw.active.end

    from repro.migration.algorithms import TableUpdate

    n_updates = sum(isinstance(s, TableUpdate) for s in e.active.plan.steps)
    assert os_end - hw_end == n_updates * e.config.os_update_cycles


def test_coarse_granularity_pays_nothing_extra():
    e = engine_for(1 * MB)
    hot = e.amap.n_onpkg_pages + 3
    assert trigger(e, hot).triggered
    # duration ~= copy bytes / bandwidth, no OS term
    expected = round(e.active.plan.total_copy_bytes / 3.33)
    assert abs((e.active.end - e.active.start) - expected) < 0.02 * expected
