"""Unit and property tests for repro.address."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.address import AddressMap, PHYSICAL_ADDRESS_BITS, interleave_bits
from repro.errors import AddressError, ConfigError
from repro.units import GB, KB, MB


class TestAddressMapGeometry:
    def test_paper_geometry(self):
        """The Fig 6 example: 4 MB pages -> 22 offset bits, 26-bit page ids;
        1 GB on-package -> N = 256."""
        amap = AddressMap(8 * GB, 1 * GB, 4 * MB)
        assert amap.offset_bits == 22
        assert amap.page_bits == PHYSICAL_ADDRESS_BITS - 22 == 26
        assert amap.n_onpkg_pages == 256

    def test_table3_geometry(self):
        amap = AddressMap(4 * GB, 512 * MB, 4 * KB)
        assert amap.n_onpkg_pages == 512 * MB // (4 * KB)
        assert amap.n_total_pages == 4 * GB // (4 * KB)
        assert amap.subblocks_per_page == 1

    def test_ghost_is_last_page(self, tiny_amap):
        assert tiny_amap.ghost_page == tiny_amap.n_total_pages - 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(total_bytes=3 * MB, onpkg_bytes=1 * MB, macro_page_bytes=4 * KB),
            dict(total_bytes=4 * MB, onpkg_bytes=4 * MB, macro_page_bytes=4 * KB),
            dict(total_bytes=16 * MB, onpkg_bytes=1 * MB, macro_page_bytes=2 * MB),
            dict(total_bytes=16 * MB, onpkg_bytes=4 * MB, macro_page_bytes=4 * KB,
                 subblock_bytes=8 * KB),
        ],
    )
    def test_invalid_geometries_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AddressMap(**kwargs)


class TestDecomposition:
    def test_page_and_offset(self, tiny_amap):
        addr = 5 * tiny_amap.macro_page_bytes + 12345
        assert tiny_amap.page_of(addr) == 5
        assert tiny_amap.offset_of(addr) == 12345

    def test_vectorised(self, tiny_amap):
        addr = np.array([0, 1 * MB, 1 * MB + 7, 15 * MB + 42])
        np.testing.assert_array_equal(tiny_amap.page_of(addr), [0, 1, 1, 15])
        np.testing.assert_array_equal(tiny_amap.offset_of(addr), [0, 0, 7, 42])

    def test_compose_validates(self, tiny_amap):
        with pytest.raises(AddressError):
            tiny_amap.compose(0, tiny_amap.macro_page_bytes)
        with pytest.raises(AddressError):
            tiny_amap.compose(-1, 0)

    def test_subblock_of(self, tiny_amap):
        assert tiny_amap.subblock_of(4 * KB) == 1
        assert tiny_amap.subblock_of(1 * MB - 1) == tiny_amap.subblocks_per_page - 1

    def test_check_addresses(self, tiny_amap):
        tiny_amap.check_addresses(np.array([0, 16 * MB - 1]))
        with pytest.raises(AddressError):
            tiny_amap.check_addresses(np.array([16 * MB]))
        with pytest.raises(AddressError):
            tiny_amap.check_addresses(np.array([-1]))

    @given(
        page=st.integers(min_value=0, max_value=(1 << 26) - 1),
        offset=st.integers(min_value=0, max_value=4 * MB - 1),
    )
    def test_compose_decompose_roundtrip(self, page, offset):
        amap = AddressMap(8 * GB, 1 * GB, 4 * MB)
        addr = amap.compose(page, offset)
        assert amap.page_of(addr) == page
        assert amap.offset_of(addr) == offset


class TestRegionDecode:
    def test_msb_decode(self, tiny_amap):
        machine = np.arange(tiny_amap.n_total_pages)
        on = tiny_amap.is_onpkg_machine_page(machine)
        assert on[: tiny_amap.n_onpkg_pages].all()
        assert not on[tiny_amap.n_onpkg_pages :].any()


def test_interleave_bits():
    addr = np.array([0, 8192, 16384, 24576])
    np.testing.assert_array_equal(interleave_bits(addr, 13, 4), [0, 1, 2, 3])
    with pytest.raises(ConfigError):
        interleave_bits(addr, 13, 0)
