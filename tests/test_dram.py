"""Tests for the DRAM substrate: geometry, banks, FR-FCFS, latency paths."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DramTiming, LatencyComponents, offpkg_dram_timing, onpkg_dram_timing
from repro.dram.bank import Bank
from repro.dram.fastmodel import FastDevice
from repro.dram.latency import LatencyModel, make_offpkg_model, make_onpkg_model
from repro.dram.scheduler import EventDrivenDevice, FRFCFSScheduler
from repro.dram.timing import DramGeometry
from repro.errors import ConfigError, SimulationError


class TestGeometry:
    def test_decompose_interleaves_channels_then_banks(self):
        geo = DramGeometry(offpkg_dram_timing(), row_bytes=8192)
        ch, bank, row = geo.decompose(np.array([0, 8192, 8192 * 4, 8192 * 32]))
        assert ch.tolist() == [0, 1, 0, 0]
        assert bank.tolist() == [0, 0, 1, 0]
        assert row.tolist() == [0, 0, 0, 1]

    def test_queue_count(self):
        assert DramGeometry(offpkg_dram_timing()).n_queues == 32
        assert DramGeometry(onpkg_dram_timing()).n_queues == 128

    def test_rejects_bad_row_bytes(self):
        with pytest.raises(ConfigError):
            DramGeometry(offpkg_dram_timing(), row_bytes=1000)


class TestBank:
    def test_cold_access_is_conflict(self):
        bank = Bank(offpkg_dram_timing())
        start, finish, hit = bank.access(row=3, arrival=0)
        assert not hit
        assert finish - start == bank.timing.miss_cycles

    def test_row_hit_then_conflict(self):
        t = offpkg_dram_timing()
        bank = Bank(t)
        bank.access(3, 0)
        _, f1, hit1 = bank.access(3, 1000)
        assert hit1 and f1 == 1000 + t.hit_cycles
        _, _, hit2 = bank.access(4, 2000)
        assert not hit2
        assert bank.hits == 1 and bank.conflicts == 2
        assert bank.row_hit_rate == pytest.approx(1 / 3)

    def test_busy_bank_queues(self):
        t = offpkg_dram_timing()
        bank = Bank(t)
        _, f1, _ = bank.access(1, 0)
        s2, _, _ = bank.access(1, 1)
        assert s2 == f1  # waits for the bank

    def test_queue_wait_capped(self):
        t = DramTiming(max_queue_wait=100)
        bank = Bank(t)
        bank.ready_time = 10_000
        s, f, _ = bank.access(1, arrival=0)
        assert s == 100


class TestFRFCFS:
    def test_row_hit_scheduled_first(self):
        """Two pending requests: the row hit jumps the queue (FR),
        even if the conflicting request is older."""
        t = offpkg_dram_timing()
        sched = FRFCFSScheduler(t)
        # row 0 opens the buffer; then a conflict (row 9) arrives before a
        # hit (row 0), both pending while the bank is busy
        rows = np.array([0, 9, 0])
        arrivals = np.array([0, 1, 2])
        start, finish, hit = sched.service(rows, arrivals)
        assert hit.tolist() == [False, False, True]
        # the third request (hit) is serviced before the second
        assert start[2] < start[1]

    def test_fcfs_tiebreak_oldest(self):
        t = offpkg_dram_timing()
        sched = FRFCFSScheduler(t)
        rows = np.array([0, 5, 7])
        arrivals = np.array([0, 1, 2])
        start, _, _ = sched.service(rows, arrivals)
        assert start[1] < start[2]

    def test_rejects_unsorted_arrivals(self):
        sched = FRFCFSScheduler(offpkg_dram_timing())
        with pytest.raises(SimulationError):
            sched.service(np.array([0, 1]), np.array([5, 1]))


class TestDeviceCrossValidation:
    """FastDevice vs EventDrivenDevice on identical streams."""

    def _random_stream(self, n, seed, span=1 << 26, max_gap=60):
        rng = np.random.default_rng(seed)
        addr = rng.integers(0, span // 64, n) * 64
        arrivals = np.cumsum(rng.integers(1, max_gap, n))
        return addr, arrivals

    @pytest.mark.parametrize("timing", [offpkg_dram_timing(), onpkg_dram_timing()])
    def test_agree_on_light_load(self, timing):
        addr, arrivals = self._random_stream(3000, seed=1)
        geo = DramGeometry(timing)
        fast = FastDevice(geo).service(addr, arrivals)
        event = EventDrivenDevice(geo).service(addr, arrivals)
        # FR-FCFS reordering only matters when queues build; under light
        # load the two must agree almost everywhere, and closely on average
        agree = (fast == event).mean()
        assert agree > 0.95
        assert abs(fast.mean() - event.mean()) / event.mean() < 0.02

    def test_sequential_stream_row_hits(self):
        geo = DramGeometry(offpkg_dram_timing())
        addr = np.arange(5000, dtype=np.int64) * 64
        arrivals = np.arange(5000, dtype=np.int64) * 70
        dev = FastDevice(geo)
        dev.service(addr, arrivals)
        assert dev.row_hit_rate > 0.9  # 8 KB rows -> 127/128 hits

    def test_random_traffic_row_misses(self):
        geo = DramGeometry(offpkg_dram_timing())
        addr, arrivals = self._random_stream(5000, seed=2, span=1 << 30)
        dev = FastDevice(geo)
        dev.service(addr, arrivals)
        assert dev.row_hit_rate < 0.1

    def test_state_persists_across_chunks(self):
        geo = DramGeometry(offpkg_dram_timing())
        addr, arrivals = self._random_stream(2000, seed=3)
        whole = FastDevice(geo).service(addr, arrivals)
        dev = FastDevice(geo)
        parts = np.concatenate(
            [dev.service(addr[:1000], arrivals[:1000]), dev.service(addr[1000:], arrivals[1000:])]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_reset(self):
        geo = DramGeometry(offpkg_dram_timing())
        dev = FastDevice(geo)
        addr, arrivals = self._random_stream(100, seed=4)
        dev.service(addr, arrivals)
        dev.reset()
        assert dev.row_hits == 0 and dev.row_conflicts == 0

    def test_empty_chunk(self):
        geo = DramGeometry(offpkg_dram_timing())
        assert FastDevice(geo).service(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0

    def test_rejects_unsorted(self):
        geo = DramGeometry(offpkg_dram_timing())
        with pytest.raises(SimulationError):
            FastDevice(geo).service(np.array([0, 64]), np.array([5, 1]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(10, 400))
    def test_agreement_property(self, seed, n):
        addr, arrivals = self._random_stream(n, seed)
        geo = DramGeometry(offpkg_dram_timing())
        fast = FastDevice(geo).service(addr, arrivals)
        event = EventDrivenDevice(geo).service(addr, arrivals)
        assert fast.min() >= offpkg_dram_timing().hit_cycles
        # mean within 5% even when occasional reordering differs
        assert abs(fast.mean() - event.mean()) <= max(2.0, 0.05 * event.mean())


class TestQueuingClaims:
    """Section II's bank-count claim: heavy traffic queues on the 8-bank
    off-package DRAM but barely on the 128-bank on-package DRAM."""

    def test_many_banks_kill_queuing(self):
        rng = np.random.default_rng(0)
        n = 30000
        addr = rng.integers(0, (1 << 27) // 64, n) * 64
        arrivals = np.cumsum(rng.integers(1, 12, n))  # heavy load
        off = FastDevice(DramGeometry(offpkg_dram_timing()))
        on = FastDevice(DramGeometry(onpkg_dram_timing()))
        off_lat = off.service(addr, arrivals)
        on_lat = on.service(addr, arrivals)
        off_queue = off_lat.mean() - offpkg_dram_timing().miss_cycles
        on_queue = on_lat.mean() - onpkg_dram_timing().miss_cycles
        assert off_queue > 5 * max(on_queue, 1.0)


class TestLatencyModel:
    def test_path_overheads(self):
        assert make_offpkg_model().path_overhead == 34
        assert make_onpkg_model().path_overhead == 20

    def test_unloaded_latency_composition(self):
        m = make_offpkg_model()
        assert m.unloaded_latency() == 34 + offpkg_dram_timing().miss_cycles

    def test_access_latency_adds_path(self):
        m = make_onpkg_model()
        lat = m.access_latency(np.array([0]), np.array([0]))
        assert lat[0] == onpkg_dram_timing().miss_cycles + 20

    def test_detailed_flag_switches_device(self):
        assert isinstance(make_offpkg_model(detailed=True).device, EventDrivenDevice)
        assert isinstance(make_offpkg_model().device, FastDevice)


class TestRefresh:
    """Optional tREFI/tRFC refresh windows (extension; see bench_refresh)."""

    def _timing(self):
        return DramTiming(refresh_interval=1000, refresh_cycles=100)

    def test_access_in_window_waits(self):
        bank = Bank(self._timing())
        # arrival at cycle 2030: 70 cycles of the window remain
        start, finish, _ = bank.access(row=1, arrival=2030)
        assert start == 2100

    def test_access_outside_window_unaffected(self):
        bank = Bank(self._timing())
        start, _, _ = bank.access(row=1, arrival=2500)
        assert start == 2500

    def test_fast_model_charges_the_wait(self):
        geo = DramGeometry(self._timing())
        dev = FastDevice(geo)
        lat = dev.service(np.array([0, 0]), np.array([2030, 2500]))
        assert lat[0] - lat[1] >= 60  # ~70-cycle refresh wait, row-state aside

    def test_fast_and_bank_agree(self):
        timing = self._timing()
        geo = DramGeometry(timing)
        rng = np.random.default_rng(0)
        addr = rng.integers(0, 1 << 20, 500) // 64 * 64
        arrivals = np.cumsum(rng.integers(50, 300, 500))
        fast = FastDevice(geo).service(addr, arrivals)
        event = EventDrivenDevice(geo).service(addr, arrivals)
        assert abs(fast.mean() - event.mean()) < max(2.0, 0.05 * event.mean())

    def test_invalid_refresh_config(self):
        with pytest.raises(ConfigError):
            DramTiming(refresh_interval=100, refresh_cycles=100)
        with pytest.raises(ConfigError):
            DramTiming(refresh_interval=-1)


class TestWriteRecovery:
    """Optional tWR write-recovery modelling."""

    def test_write_costs_more_when_enabled(self):
        t = DramTiming(t_wr=48)
        bank = Bank(t)
        _, f_w, _ = bank.access(1, 0, write=True)
        bank2 = Bank(t)
        _, f_r, _ = bank2.access(1, 0, write=False)
        assert f_w - f_r == 48

    def test_disabled_by_default(self):
        bank = Bank(offpkg_dram_timing())
        _, f_w, _ = bank.access(1, 0, write=True)
        bank2 = Bank(offpkg_dram_timing())
        _, f_r, _ = bank2.access(1, 0, write=False)
        assert f_w == f_r

    def test_fast_model_charges_writes(self):
        t = DramTiming(t_wr=48)
        geo = DramGeometry(t)
        addr = np.arange(100, dtype=np.int64) * 8192 * 64  # distinct banks/rows
        arrivals = np.arange(100, dtype=np.int64) * 500
        reads = FastDevice(geo).service(addr, arrivals, np.zeros(100, dtype=bool))
        writes = FastDevice(geo).service(addr, arrivals, np.ones(100, dtype=bool))
        assert (writes - reads == 48).all()

    def test_fast_and_event_agree_with_writes(self):
        t = DramTiming(t_wr=48)
        geo = DramGeometry(t)
        rng = np.random.default_rng(5)
        addr = rng.integers(0, 1 << 20, 400) // 64 * 64
        arrivals = np.cumsum(rng.integers(30, 200, 400))
        w = rng.random(400) < 0.4
        fast = FastDevice(geo).service(addr, arrivals, w)
        event = EventDrivenDevice(geo).service(addr, arrivals, w)
        assert abs(fast.mean() - event.mean()) < max(2.0, 0.05 * event.mean())


class TestChannelBus:
    """Optional per-channel data-bus serialisation."""

    def test_uncontended_adds_nothing(self):
        base = DramTiming()
        bus = DramTiming(channel_bus=True)
        addr = np.arange(50, dtype=np.int64) * 64
        arrivals = np.arange(50, dtype=np.int64) * 1000  # far apart
        a = FastDevice(DramGeometry(base)).service(addr, arrivals)
        b = FastDevice(DramGeometry(bus)).service(addr, arrivals)
        np.testing.assert_array_equal(a, b)

    def test_contention_queues_bursts(self):
        """Simultaneous accesses to different banks of ONE channel must
        serialise their data bursts when the bus is modelled."""
        base = DramTiming(n_channels=1, n_banks=8)
        bus = DramTiming(n_channels=1, n_banks=8, channel_bus=True)
        # 8 accesses, one per bank, all arriving together
        addr = (np.arange(8, dtype=np.int64) * 8192)
        arrivals = np.zeros(8, dtype=np.int64)
        a = FastDevice(DramGeometry(base)).service(addr, arrivals)
        b = FastDevice(DramGeometry(bus)).service(addr, arrivals)
        assert b.sum() > a.sum()
        # the worst access waits ~7 extra bursts
        assert b.max() - a.max() >= 6 * base.io_cycles

    def test_channels_are_independent(self):
        bus = DramTiming(n_channels=4, n_banks=8, channel_bus=True)
        # one access per channel, simultaneous: no shared bus -> no extra
        addr = np.arange(4, dtype=np.int64) * 8192
        arrivals = np.zeros(4, dtype=np.int64)
        base = DramTiming(n_channels=4, n_banks=8)
        a = FastDevice(DramGeometry(base)).service(addr, arrivals)
        b = FastDevice(DramGeometry(bus)).service(addr, arrivals)
        np.testing.assert_array_equal(a, b)
