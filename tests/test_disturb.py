"""Row-disturbance subsystem tests: activation extraction, the leaky
buckets, the mitigation ladder (victim refresh -> throttle -> RAS
retirement / migration bias), unmitigated flips surfacing through the
shadow memory, fault injection, checkpointing, and the pinned
CORE_FAULT_KINDS regression."""

import numpy as np
import pytest

from repro.config import (
    DisturbConfig,
    MigrationConfig,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
)
from repro.core.simulator import EpochSimulator
from repro.errors import ConfigError
from repro.ras import ActivationTelemetry
from repro.ras.disturb import activation_events
from repro.resilience.degradation import (
    HAMMER_THROTTLED,
    ROW_DISTURB_FLIPS,
    VICTIM_REFRESHED,
    summarize_events,
)
from repro.resilience.faults import (
    CORE_FAULT_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.trace.record import make_chunk
from repro.units import KB, MB

SWAP = 200


def _cfg(algorithm="live", **disturb):
    kw = dict(
        enabled=True, seed=5, act_threshold=16, alert_level=0.5,
        act_leak=2.0, mitigate=True, victim_refresh_max=1,
        flips_per_victim=2, migration_bias=0.0, throttle_cycles=100,
    )
    kw.update(disturb)
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        offpkg_dram=offpkg_dram_timing(refresh=True),
        onpkg_dram=onpkg_dram_timing(refresh=True),
        migration=MigrationConfig(
            macro_page_bytes=64 * KB, swap_interval=SWAP, algorithm=algorithm,
        ),
    ).with_disturb(**kw)


def _hammer_trace(n_epochs, *, tier="off", seed=3):
    """60% of accesses strictly alternate between two aggressor rows of
    one bank (every one a row activation), the rest are hot/cold
    background reads (reads only: flips are never healed by stores)."""
    if tier == "off":
        t = offpkg_dram_timing()
        stride = 8192 * t.n_channels * t.n_banks
        base = 2 * MB + 5 * 64 * KB
        pair = np.array([base, base + 2 * stride], dtype=np.int64)
    else:
        # on-package geometry: 128 banks x 1 channel -> rows 0 and 1 of
        # bank 0 live at offsets 0 and 1 MB, both on-package initially
        pair = np.array([0, 8192 * 128], dtype=np.int64)
    n = n_epochs * SWAP
    rng = np.random.default_rng(seed)
    hot = rng.random(n) < 0.7
    hot_addr = MB // 2 + rng.integers(0, MB, n)
    cold_addr = rng.integers(0, 12 * MB, n)
    addr = (np.where(hot, hot_addr, cold_addr) // 64) * 64
    ham = rng.random(n) < 0.6
    seq = np.arange(int(ham.sum()))
    addr[ham] = pair[seq % 2]
    time = np.cumsum(rng.integers(1, 30, n))
    return make_chunk(addr.astype(np.int64), time=time.astype(np.int64))


# ---------------------------------------------------------------------------
# configuration validation
# ---------------------------------------------------------------------------

class TestDisturbConfigValidation:
    @pytest.mark.parametrize("kw", [
        dict(act_threshold=0),
        dict(act_threshold=-4),
        dict(alert_level=0.0),
        dict(alert_level=1.5),
        dict(act_leak=-1.0),
        dict(victim_refresh_max=-1),
        dict(flips_per_victim=0),
        dict(migration_bias=-0.5),
        dict(throttle_cycles=-1),
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ConfigError):
            DisturbConfig(**kw)

    def test_default_is_disabled(self):
        assert not DisturbConfig().enabled
        assert not SystemConfig().disturb.enabled


# ---------------------------------------------------------------------------
# activation extraction + telemetry
# ---------------------------------------------------------------------------

class TestActivationEvents:
    def test_row_change_within_queue_activates(self):
        queues = np.array([0, 0, 0, 1, 1])
        rows = np.array([5, 5, 6, 7, 7])
        act, order = activation_events(queues, rows)
        assert order.tolist() == [0, 1, 2, 3, 4]
        assert act.tolist() == [True, False, True, True, False]

    def test_interleaved_queues_do_not_thrash(self):
        """A row staying open in its own bank is one activation even
        when accesses to other banks interleave."""
        queues = np.array([0, 1, 0, 1])
        rows = np.array([1, 1, 1, 2])
        act, order = activation_events(queues, rows)
        assert order.tolist() == [0, 2, 1, 3]
        assert act.tolist() == [True, False, True, True]

    def test_strict_alternation_activates_every_access(self):
        queues = np.zeros(8, dtype=np.int64)
        rows = np.tile([3, 5], 4)
        act, _ = activation_events(queues, rows)
        assert act.all()

    def test_empty_epoch(self):
        act, order = activation_events(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        )
        assert act.size == 0 and order.size == 0


class TestActivationTelemetry:
    def test_fold_accumulates_and_decay_drops(self):
        t = ActivationTelemetry(threshold=10, leak=3.0)
        t.fold("off", np.array([1, 2]), np.array([7, 9]), np.array([4, 2]))
        t.fold("off", np.array([1]), np.array([7]), np.array([4]))
        assert t.level[("off", 1, 7)] == 8.0
        assert t.total_activations == 10
        assert t.over(8.0) == [("off", 1, 7)]
        t.decay()
        assert t.level[("off", 1, 7)] == 5.0
        t.decay()  # 2.0
        t.decay()  # fully leaked -> dropped
        assert ("off", 2, 9) not in t.level
        t.decay()
        assert not t.level

    def test_bump_reset_and_round_trip(self):
        t = ActivationTelemetry(threshold=10, leak=1.0)
        t.bump(("on", 0, 3), 12.0)
        u = ActivationTelemetry(threshold=10, leak=1.0)
        u.load_state_dict(t.state_dict())
        assert u.level == t.level
        u.reset(("on", 0, 3))
        assert not u.level and t.level  # reset is local to the copy


# ---------------------------------------------------------------------------
# row geometry: shadow locations round-trip through the DRAM decomposition
# ---------------------------------------------------------------------------

class TestRowChunks:
    def test_offpkg_chunks_round_trip(self):
        sim = EpochSimulator(_cfg())
        ctl = sim._disturb
        amap = sim.engine.amap
        chunks = ctl._row_chunks("off", 3, 7)
        geo = ctl._geo["off"]
        assert len(chunks) == geo.row_bytes // min(
            amap.subblock_bytes, geo.row_bytes
        )
        for loc, addr, sb in chunks:
            q, r = geo.queues_and_rows(np.array([addr]))
            assert (int(q[0]), int(r[0])) == (3, 7)
            assert loc == ("mach", (addr >> amap.offset_bits) + amap.n_onpkg_pages)
            assert sb == (addr & (amap.macro_page_bytes - 1)) >> ctl._sb_shift

    def test_onpkg_chunks_are_slot_locations(self):
        sim = EpochSimulator(_cfg())
        ctl = sim._disturb
        for loc, addr, _sb in ctl._row_chunks("on", 0, 1):
            assert loc == ("slot", addr >> sim.engine.amap.offset_bits)

    def test_rows_outside_the_region_yield_nothing(self):
        sim = EpochSimulator(_cfg())
        ctl = sim._disturb
        assert ctl._row_chunks("on", 0, -1) == []
        # 2 MB on-package / 1 MB row stride -> rows 0 and 1 only
        assert ctl._row_chunks("on", 0, 2) == []

    def test_victims_are_the_wordline_neighbours(self):
        sim = EpochSimulator(_cfg())
        victims = sim._disturb._victim_chunks(("off", 4, 9))
        assert [v for v, _ in victims] == [8, 10]
        edge = sim._disturb._victim_chunks(("on", 0, 0))
        assert [v for v, _ in edge] == [1]  # row -1 does not exist


# ---------------------------------------------------------------------------
# the mitigation ladder end to end
# ---------------------------------------------------------------------------

class TestMitigationLadder:
    def test_mitigated_hammering_loses_no_data(self):
        """Victim refresh then throttling keeps the shadow memory clean."""
        sim = EpochSimulator(_cfg(), migrate=False, track_data=True)
        result = sim.run(_hammer_trace(10))
        d = result.disturb
        assert d.activations_total > 0
        assert d.alerts >= 1
        assert d.victim_refreshes >= 1
        assert d.victim_refresh_cycles > 0
        assert d.throttles >= 1  # one-refresh budget forces escalation
        assert d.flip_bursts == 0 and d.flip_cells == 0
        assert result.data_violations == 0
        assert sim.shadow.verify_table(sim.table) == []
        kinds = summarize_events(result.degradation_events)
        assert kinds[VICTIM_REFRESHED] == d.victim_refreshes
        assert kinds[HAMMER_THROTTLED] == d.throttles
        assert ROW_DISTURB_FLIPS not in kinds

    def test_unmitigated_flips_always_surface(self):
        """mitigate=False: flips land, and every corrupted sub-block is
        reported by a demand read or the final sweep — never silently."""
        sim = EpochSimulator(
            _cfg(mitigate=False), migrate=False, track_data=True
        )
        result = sim.run(_hammer_trace(10))
        d = result.disturb
        assert d.flip_bursts >= 1
        assert d.flip_cells >= 1
        assert d.victim_refreshes == 0 and d.throttles == 0
        leftover = sim.shadow.verify_table(sim.table)
        assert result.data_violations + len(leftover) >= d.flip_cells
        kinds = summarize_events(result.degradation_events)
        assert kinds[ROW_DISTURB_FLIPS] == d.flip_bursts

    def test_onpkg_escalation_pumps_predictive_retirement(self):
        """An on-package aggressor past its refresh budget is handed to
        the RAS CE telemetry, which takes the frame off-line."""
        cfg = _cfg(victim_refresh_max=0).with_ras(enabled=True)
        sim = EpochSimulator(cfg, migrate=False)
        result = sim.run(_hammer_trace(10, tier="on"))
        d = result.disturb
        assert d.throttles >= 1
        assert d.retirements_pumped >= 1
        assert result.ras.frames_retired >= 1
        sim.table.audit()

    def test_offpkg_escalation_boosts_migration_pressure(self):
        cfg = _cfg(victim_refresh_max=0, migration_bias=4.0)
        sim = EpochSimulator(cfg, migrate=False)
        result = sim.run(_hammer_trace(8))
        assert result.disturb.pressure_boosts >= 1

    def test_mitigation_cost_is_charged_to_the_run(self):
        """Mitigation is not free: the run pays at least the throttle
        cycles on top of the quiet baseline. (It is not *exactly* the
        sum — victim-refresh reads share the FR-FCFS bank state with
        demand traffic, so they also perturb later row-hit patterns.)"""
        quiet = EpochSimulator(
            _cfg(act_threshold=10**6), migrate=False
        ).run(_hammer_trace(8))
        loud = EpochSimulator(_cfg(), migrate=False).run(_hammer_trace(8))
        d = loud.disturb
        assert d.victim_refresh_cycles > 0 and d.throttle_cycles > 0
        assert loud.total_latency >= quiet.total_latency + d.throttle_cycles


# ---------------------------------------------------------------------------
# migration as mitigation
# ---------------------------------------------------------------------------

class TestMigrationBias:
    def test_page_bonus_scales_pressure(self):
        sim = EpochSimulator(_cfg(migration_bias=4.0))
        ctl = sim._disturb
        assert sim.engine.disturb is ctl
        assert ctl.bias_weight == 4.0
        ctl.pressure[5] = 2.0
        assert ctl.page_bonus(np.array([5, 6])).tolist() == [8.0, 0.0]

    def test_aggressor_pages_get_pulled_onpackage(self):
        cfg = _cfg(migration_bias=4.0, victim_refresh_max=0)
        sim = EpochSimulator(cfg)
        result = sim.run(_hammer_trace(10))
        aggressor_pages = [
            (2 * MB + 5 * 64 * KB) >> 16, (2 * MB + 13 * 64 * KB) >> 16,
        ]
        assert any(bool(sim.table.onpkg[p]) for p in aggressor_pages)
        assert result.swaps_triggered > 0


# ---------------------------------------------------------------------------
# fault injection, determinism, checkpointing, disabled identity
# ---------------------------------------------------------------------------

class TestFaultsAndState:
    def test_row_disturb_fault_lands_as_a_burst(self):
        sim = EpochSimulator(_cfg(), migrate=False)
        plan = FaultPlan(
            events=(FaultEvent(epoch=2, kind=FaultKind.ROW_DISTURB, param=7),),
            seed=1,
        )
        sim.attach_faults(plan)
        result = sim.run(_hammer_trace(8))
        assert result.disturb.hammer_bursts == 1
        assert result.faults_injected == 1

    def test_row_disturb_fault_is_noop_without_the_controller(self):
        cfg = _cfg().with_disturb(enabled=False)
        sim = EpochSimulator(cfg, migrate=False, fused=False)
        plan = FaultPlan(
            events=(FaultEvent(epoch=2, kind=FaultKind.ROW_DISTURB, param=0),),
            seed=1,
        )
        sim.attach_faults(plan)
        result = sim.run(_hammer_trace(6))
        assert result.disturb is None

    def test_runs_are_deterministic(self):
        trace = _hammer_trace(8)
        runs = [
            EpochSimulator(
                _cfg(mitigate=False), migrate=False, track_data=True
            ).run(trace)
            for _ in range(2)
        ]
        assert runs[0].disturb == runs[1].disturb
        assert runs[0].total_latency == runs[1].total_latency
        assert runs[0].data_violations == runs[1].data_violations

    def test_checkpoint_round_trip_mid_hammer(self):
        cfg = _cfg()
        full = _hammer_trace(12)
        cut = full.addr.size // 2
        first = make_chunk(full.addr[:cut], time=full.time[:cut])
        second = make_chunk(full.addr[cut:], time=full.time[cut:])

        sim = EpochSimulator(cfg, migrate=False, track_data=True)
        sim.run(first)
        snapshot = sim.state_dict()
        res_a = sim.run(second)

        resumed = EpochSimulator(cfg, migrate=False, track_data=True)
        resumed.load_state_dict(snapshot)
        res_b = resumed.run(second)

        assert res_a.total_latency == res_b.total_latency
        assert res_a.disturb == res_b.disturb
        assert resumed._disturb.shadow is resumed.shadow
        assert resumed.engine.disturb is resumed._disturb

    def test_neutral_thresholds_are_bit_identical_to_disabled(self):
        """An armed controller that never alerts must not change a
        single number (and the disabled config takes the fused path, so
        this doubles as a stepwise-vs-fused check)."""
        trace = _hammer_trace(8)
        quiet = EpochSimulator(_cfg(act_threshold=10**6)).run(trace)
        off = EpochSimulator(_cfg().with_disturb(enabled=False)).run(trace)
        assert quiet.disturb is not None and off.disturb is None
        assert quiet.total_latency == off.total_latency
        assert quiet.epoch_latency == off.epoch_latency
        assert quiet.swaps_triggered == off.swaps_triggered

    def test_core_fault_kinds_pinned_exactly(self):
        """Seeded legacy campaigns must replay identically: adding
        ROW_DISTURB must not widen the default random-plan pool."""
        assert CORE_FAULT_KINDS == (
            FaultKind.ABORT_SWAP,
            FaultKind.STUCK_P_BIT,
            FaultKind.STUCK_F_BIT,
            FaultKind.BITMAP_CORRUPTION,
            FaultKind.DRAM_TRANSIENT,
        )
        assert FaultKind.ROW_DISTURB not in CORE_FAULT_KINDS
        assert FaultKind.ROW_DISTURB.value == "row-disturb"
