"""Cross-cutting property and metamorphic tests.

These encode relationships that must hold across modules regardless of
parameters — the kind of invariant a refactor silently breaks.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.cache.stackdist import StackDistanceProfile
from repro.config import MigrationConfig, SystemConfig
from repro.core.hetero_memory import HeterogeneousMainMemory, baseline_latency
from repro.trace.record import make_chunk
from repro.units import KB, MB

from .conftest import synthetic_trace


def config(**kw) -> SystemConfig:
    defaults = dict(algorithm="live", macro_page_bytes=64 * KB, swap_interval=500)
    defaults.update(kw)
    return SystemConfig(
        total_bytes=64 * MB, onpkg_bytes=8 * MB, migration=MigrationConfig(**defaults)
    )


class TestLatencyFloors:
    def test_every_access_pays_at_least_the_path(self):
        """No access can beat path overhead + a row hit + translation."""
        trace = synthetic_trace(5000)
        cfg = config()
        sim = HeterogeneousMainMemory(cfg)
        sim.run(trace)
        floor_on = cfg.latency.onpkg_overhead + cfg.onpkg_dram.hit_cycles
        res = sim.run(
            make_chunk(trace.addr[:100], time=trace.time[:100] + int(trace.time[-1]) + 1000)
        )
        assert res.average_latency >= floor_on

    def test_interference_never_negative(self):
        trace = synthetic_trace(5000)
        res = HeterogeneousMainMemory(config()).run(trace)
        assert min(res.epoch_latency) > 0


class TestMetamorphic:
    def test_time_translation_invariance(self):
        """Shifting all timestamps by a constant changes nothing."""
        trace = synthetic_trace(6000, hot_weight=0.85)
        rec = trace.records.copy()
        rec["time"] += 123_456
        shifted = make_chunk(rec["addr"], time=rec["time"], cpu=rec["cpu"], rw=rec["rw"])
        a = HeterogeneousMainMemory(config()).run(trace)
        b = HeterogeneousMainMemory(config()).run(shifted)
        assert a.total_latency == b.total_latency
        assert a.swaps_triggered == b.swaps_triggered

    def test_address_region_permutation_under_static(self):
        """For the all-off-package baseline, relabeling which macro pages
        are hot must not change the average latency materially (bank
        hashing aside)."""
        rng = np.random.default_rng(0)
        n = 8000
        blocks = rng.integers(0, 64 * MB // 4096, n)
        t = np.cumsum(rng.integers(1, 80, n))
        a = baseline_latency(config(), make_chunk(blocks * 4096, time=t), "all-offpkg")
        shuffled = (blocks * 2654435761) % (64 * MB // 4096)
        b = baseline_latency(config(), make_chunk(shuffled * 4096, time=t), "all-offpkg")
        assert a.average_latency == pytest.approx(b.average_latency, rel=0.05)

    def test_more_onpkg_capacity_never_hurts_static(self):
        trace = synthetic_trace(8000)
        lats = []
        for onpkg in (4 * MB, 8 * MB, 16 * MB):
            cfg = SystemConfig(
                total_bytes=64 * MB, onpkg_bytes=onpkg,
                migration=MigrationConfig(macro_page_bytes=64 * KB, swap_interval=500),
            )
            lats.append(baseline_latency(cfg, trace, "static").average_latency)
        assert lats[0] >= lats[1] - 1.0 >= lats[2] - 2.0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_stackdist_prefix_monotone(self, seed):
        """Appending accesses never changes earlier distances."""
        rng = np.random.default_rng(seed)
        addr = rng.integers(0, 200, 120) * 64
        full = StackDistanceProfile(addr).distances
        prefix = StackDistanceProfile(addr[:60]).distances
        np.testing.assert_array_equal(full[:60], prefix)


class TestConservation:
    def test_migrated_bytes_are_page_multiples(self):
        trace = synthetic_trace(20000, hot_weight=0.9)
        cfg = config()
        res = HeterogeneousMainMemory(cfg).run(trace)
        assert res.migrated_bytes % cfg.migration.macro_page_bytes == 0
        assert res.cross_boundary_migrated_bytes <= res.migrated_bytes

    def test_epoch_latency_series_aggregates_to_total(self):
        trace = synthetic_trace(5000)
        cfg = config(swap_interval=500)
        res = HeterogeneousMainMemory(cfg).run(trace)
        # equal-size epochs: the mean of epoch means is the global mean
        assert float(np.mean(res.epoch_latency)) == pytest.approx(
            res.average_latency, rel=1e-9
        )
