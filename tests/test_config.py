"""Configuration tests — Table II/III numbers and validation."""

import pytest

from repro.config import (
    BusConfig,
    CacheHierarchyConfig,
    CacheLevelConfig,
    DramTiming,
    LatencyComponents,
    MigrationAlgorithm,
    MigrationConfig,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
    paper_config,
    scaled_config,
)
from repro.errors import ConfigError
from repro.units import GB, KB, MB


class TestLatencyComponents:
    def test_table2_offpkg_path(self):
        """controller 5 + 2x4 core link + 2x5 package pin + 11 PCB = 34."""
        assert LatencyComponents().offpkg_overhead == 34

    def test_table2_onpkg_path(self):
        """controller 5 + 2x4 core link + 2x3 interposer + 1 intra-pkg = 20."""
        assert LatencyComponents().onpkg_overhead == 20

    def test_onpkg_path_is_shorter(self):
        c = LatencyComponents()
        assert c.onpkg_overhead < c.offpkg_overhead


class TestDramTiming:
    def test_bank_counts(self):
        """8-bank off-package, 128-bank on-package (Section IV)."""
        assert offpkg_dram_timing().n_banks == 8
        assert offpkg_dram_timing().n_channels == 4
        assert onpkg_dram_timing().n_banks == 128

    def test_onpkg_io_is_faster(self):
        assert onpkg_dram_timing().io_cycles < offpkg_dram_timing().io_cycles

    def test_hit_cheaper_than_miss(self):
        t = offpkg_dram_timing()
        assert t.hit_cycles < t.miss_cycles

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            DramTiming(t_cas=0)


class TestCacheConfig:
    def test_table2_hierarchy(self):
        c = CacheHierarchyConfig()
        assert (c.l1.capacity_bytes, c.l1.ways, c.l1.latency_cycles) == (32 * KB, 8, 2)
        assert (c.l2.capacity_bytes, c.l2.ways, c.l2.latency_cycles) == (256 * KB, 8, 5)
        assert (c.l3.capacity_bytes, c.l3.ways, c.l3.latency_cycles) == (8 * MB, 16, 25)
        assert c.l3.shared and not c.l1.shared
        assert c.n_cores == 4

    def test_sets_must_divide(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(capacity_bytes=1000, ways=3, latency_cycles=1)

    def test_n_sets(self):
        assert CacheLevelConfig(32 * KB, 8, 2).n_sets == 64


class TestMigrationConfig:
    def test_defaults_valid(self):
        MigrationConfig()

    def test_algorithm_names(self):
        assert set(MigrationAlgorithm.ALL) == {"N", "N-1", "live"}
        with pytest.raises(ConfigError):
            MigrationConfig(algorithm="N-2")

    def test_os_assisted_threshold(self):
        """< 1 MB pages go OS-assisted (Section III-B)."""
        assert MigrationConfig(macro_page_bytes=256 * KB).os_assisted
        assert not MigrationConfig(macro_page_bytes=1 * MB).os_assisted
        assert not MigrationConfig(macro_page_bytes=4 * MB).os_assisted

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError):
            MigrationConfig(swap_interval=0)


class TestBusConfig:
    def test_paper_copy_time(self):
        """A 4 MB page over DDR3-1333 takes ~374 us ~= 1.2M core cycles."""
        cycles = BusConfig().copy_cycles(4 * MB)
        seconds = cycles / 3.2e9
        assert 350e-6 < seconds < 420e-6

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            BusConfig(offpkg_bytes_per_cycle=0)


class TestSystemConfig:
    def test_paper_config_geometry(self):
        cfg = paper_config()
        assert cfg.total_bytes == 4 * GB
        assert cfg.onpkg_bytes == 512 * MB
        amap = cfg.address_map()
        assert amap.onpkg_bytes * 8 == amap.total_bytes  # the 12.5% ratio

    def test_scaled_preserves_ratio(self):
        cfg = scaled_config(16)
        assert cfg.total_bytes * 1.0 / cfg.onpkg_bytes == 8.0

    def test_with_migration_replaces(self):
        cfg = paper_config().with_migration(algorithm="N", swap_interval=77)
        assert cfg.migration.algorithm == "N"
        assert cfg.migration.swap_interval == 77
        assert cfg.total_bytes == 4 * GB

    def test_invalid_geometry_fails_fast(self):
        with pytest.raises(ConfigError):
            SystemConfig(total_bytes=1 * GB, onpkg_bytes=2 * GB)

    def test_scaled_rejects_bad_scale(self):
        with pytest.raises(ConfigError):
            scaled_config(0)
