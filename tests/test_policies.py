"""Tests for hot/cold tracking: exact structures vs the epoch monitor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MigrationError
from repro.migration.policies import EpochMonitor, ExactPolicies


class TestExactPolicies:
    def test_observe_exactly_one_side(self):
        p = ExactPolicies(4)
        with pytest.raises(MigrationError):
            p.observe(slot=None, offpkg_page=None)
        with pytest.raises(MigrationError):
            p.observe(slot=1, offpkg_page=2)

    def test_coldest_and_hottest(self):
        p = ExactPolicies(4)
        for slot in (0, 1, 3):
            p.observe(slot=slot, offpkg_page=None)
        assert p.coldest_slot() == 2
        for _ in range(3):
            p.observe(slot=None, offpkg_page=77)
        p.observe(slot=None, offpkg_page=5)
        assert p.hottest_page() == 77

    def test_forget(self):
        p = ExactPolicies(4)
        p.observe(slot=None, offpkg_page=9)
        p.forget_page(9)
        assert p.hottest_page() is None

    def test_state_bits_match_paper(self):
        """256 slots: 256-bit clock map + 780-bit multi-queue."""
        assert ExactPolicies(256).state_bits == 256 + 780


class TestEpochMonitor:
    def test_coldest_prefers_untouched(self):
        m = EpochMonitor(4)
        m.observe_epoch(
            slots=np.array([0, 1, 3]),
            slot_times=np.array([10, 20, 30]),
            offpkg_pages=np.array([]),
            off_times=np.array([]),
        )
        assert m.coldest_slot() == 2

    def test_coldest_is_oldest_touch(self):
        m = EpochMonitor(3)
        m.observe_epoch(
            slots=np.array([0, 1, 2]),
            slot_times=np.array([30, 10, 20]),
            offpkg_pages=np.array([]),
            off_times=np.array([]),
        )
        assert m.coldest_slot() == 1

    def test_coldest_exclude(self):
        m = EpochMonitor(3)
        m.observe_epoch(
            slots=np.array([2]), slot_times=np.array([5]),
            offpkg_pages=np.array([]), off_times=np.array([]),
        )
        assert m.coldest_slot(exclude={0}) == 1
        with pytest.raises(MigrationError):
            m.coldest_slot(exclude={0, 1, 2})

    def test_hottest_by_count_then_recency(self):
        m = EpochMonitor(2)
        m.observe_epoch(
            slots=np.array([]), slot_times=np.array([]),
            offpkg_pages=np.array([7, 7, 9, 9, 5]),
            off_times=np.array([1, 2, 3, 4, 5]),
        )
        page, count = m.hottest_page()
        assert count == 2
        assert page == 9  # ties broken by recency (9 touched later than 7)

    def test_hottest_none_without_offpkg_traffic(self):
        m = EpochMonitor(2)
        assert m.hottest_page() is None

    def test_new_epoch_clears_counts_keeps_recency(self):
        m = EpochMonitor(2)
        m.observe_epoch(
            slots=np.array([1]), slot_times=np.array([100]),
            offpkg_pages=np.array([3]), off_times=np.array([100]),
        )
        m.new_epoch()
        assert m.hottest_page() is None
        assert m.coldest_slot() == 0  # slot 1's last touch survives epochs

    def test_slot_epoch_count(self):
        m = EpochMonitor(2)
        m.observe_epoch(
            slots=np.array([1, 1, 0]), slot_times=np.array([1, 2, 3]),
            offpkg_pages=np.array([]), off_times=np.array([]),
        )
        assert m.slot_epoch_count(1) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1)), min_size=1, max_size=60))
    def test_monitor_agrees_with_exact_on_coldest(self, events):
        """Feeding the same slot-touch stream, the epoch monitor's coldest
        slot must be one the exact clock pseudo-LRU would also consider
        cold (its reference bit is clear, or it was never touched since
        the clock's last sweep)."""
        n_slots = 8
        exact = ExactPolicies(n_slots)
        monitor = EpochMonitor(n_slots)
        slots = [s for s, _ in events]
        times = list(range(len(slots)))
        for s in slots:
            exact.observe(slot=s, offpkg_page=None)
        monitor.observe_epoch(
            slots=np.array(slots), slot_times=np.array(times),
            offpkg_pages=np.array([]), off_times=np.array([]),
        )
        cold = monitor.coldest_slot()
        # the monitor's choice was touched no more recently than any
        # untouched slot; exact clock victim is untouched-biased too
        untouched = set(range(n_slots)) - set(slots)
        if untouched:
            assert cold in untouched
