"""Refresh-scheduling tests: the tREFI/tRFC time warp, its derived
per-tier constants, the bank-level preempt/resume semantics (the old
model only deferred *arrivals*), engine copy stretching, and the
simulator wiring."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    DDR3_TREFI_S,
    DDR3_TRFC_S,
    DEFAULT_FREQUENCY_HZ,
    DramTiming,
    MigrationConfig,
    ONPKG_TRFC_S,
    SystemConfig,
    offpkg_dram_timing,
    onpkg_dram_timing,
)
from repro.core.simulator import EpochSimulator
from repro.dram.bank import Bank
from repro.dram.refresh import RefreshSchedule
from repro.errors import ConfigError
from repro.units import KB, MB

from .conftest import synthetic_trace


# ---------------------------------------------------------------------------
# schedule construction and derived constants
# ---------------------------------------------------------------------------

class TestConstruction:
    @pytest.mark.parametrize("interval,window", [
        (0, 1), (-5, 1), (100, 0), (100, -1), (100, 100), (100, 200),
    ])
    def test_rejects_bad_parameters(self, interval, window):
        with pytest.raises(ConfigError):
            RefreshSchedule(interval, window)

    def test_timing_rejects_window_at_least_interval(self):
        with pytest.raises(ConfigError):
            DramTiming(refresh_interval=100, refresh_cycles=100)

    def test_from_timing_none_when_disabled(self):
        assert RefreshSchedule.from_timing(offpkg_dram_timing()) is None
        assert RefreshSchedule.from_timing(onpkg_dram_timing()) is None

    def test_derived_per_tier_constants(self):
        """tREFI/tRFC in core cycles at the default 3.2 GHz clock."""
        off = offpkg_dram_timing(refresh=True)
        on = onpkg_dram_timing(refresh=True)
        assert off.refresh_interval == round(DDR3_TREFI_S * DEFAULT_FREQUENCY_HZ)
        assert off.refresh_interval == 24960
        assert off.refresh_cycles == round(DDR3_TRFC_S * DEFAULT_FREQUENCY_HZ) == 512
        # retention (tREFI) is shared; the small on-package banks
        # recharge in about a third of the DIMM's tRFC
        assert on.refresh_interval == off.refresh_interval
        assert on.refresh_cycles == round(ONPKG_TRFC_S * DEFAULT_FREQUENCY_HZ) == 192

    def test_overhead_duty_cycle(self):
        sched = RefreshSchedule.from_timing(offpkg_dram_timing(refresh=True))
        assert sched.overhead == pytest.approx(512 / 24960)

    def test_half_clock_halves_the_cycle_counts(self):
        off = offpkg_dram_timing(refresh=True, frequency_hz=1.6e9)
        assert off.refresh_interval == 12480
        assert off.refresh_cycles == 256


# ---------------------------------------------------------------------------
# the time warp itself
# ---------------------------------------------------------------------------

intervals = st.integers(2, 5000)


@st.composite
def schedules(draw):
    interval = draw(intervals)
    window = draw(st.integers(1, interval - 1))
    return RefreshSchedule(interval, window)


class TestTimeWarp:
    @given(sched=schedules(), u=st.integers(0, 10**9))
    @settings(max_examples=200, deadline=None)
    def test_wall_useful_round_trip(self, sched, u):
        """``useful`` is the exact left inverse of ``wall`` (both
        semantics): no useful cycle is ever created or lost."""
        assert sched.useful(sched.wall(u)) == u
        assert sched.useful(sched.wall(u, begin=True)) == u

    @given(sched=schedules(), u=st.integers(0, 10**9))
    @settings(max_examples=200, deadline=None)
    def test_start_semantics_never_inside_a_window(self, sched, u):
        """Work cannot *begin* while the array is refreshing."""
        pos = sched.wall(u, begin=True) % sched.interval
        assert pos >= sched.window

    @given(sched=schedules(), u=st.integers(0, 10**9))
    @settings(max_examples=200, deadline=None)
    def test_completion_semantics_at_boundary(self, sched, u):
        """Work may *finish* exactly as a window opens, never inside."""
        pos = sched.wall(u) % sched.interval
        assert pos == 0 or pos >= sched.window

    @given(sched=schedules(), t=st.integers(0, 10**9), dt=st.integers(0, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_useful_is_monotone_and_bounded(self, sched, t, dt):
        a, b = sched.useful(t), sched.useful(t + dt)
        assert a <= b <= a + dt  # the warp never runs faster than wall time

    @given(sched=schedules(), t=st.integers(0, 10**7))
    @settings(max_examples=200, deadline=None)
    def test_vectorised_matches_scalar(self, sched, t):
        ts = np.arange(t, t + 64, dtype=np.int64)
        assert sched.useful_np(ts).tolist() == [sched.useful(x) for x in ts]
        us = sched.useful_np(ts)
        assert sched.wall_np(us).tolist() == [sched.wall(int(u)) for u in us]

    @given(sched=schedules(), start=st.integers(0, 10**7),
           work=st.integers(1, 10**5))
    @settings(max_examples=200, deadline=None)
    def test_stretch_at_least_the_useful_work(self, sched, start, work):
        d = sched.stretch(start, work)
        assert d >= work
        # and the stretched span really contains exactly `work` useful cycles
        assert sched.useful(start + d) - sched.useful(start) == work

    def test_stretch_examples(self):
        sched = RefreshSchedule(1000, 100)
        assert sched.stretch(100, 800) == 800       # fits between windows
        assert sched.stretch(950, 100) == 200       # suspended for one tRFC
        assert sched.stretch(0, 50) == 150          # starts inside a window
        assert sched.stretch(123, 0) == 0


# ---------------------------------------------------------------------------
# bank-level preempt/resume (regression: refresh must not only defer
# arrivals — work already queued or in service is suspended too)
# ---------------------------------------------------------------------------

def _timing(**kw):
    return DramTiming(refresh_interval=2000, refresh_cycles=100, **kw)


class TestBankRefresh:
    def test_service_crossing_a_window_is_suspended(self):
        """A conflict (148 cycles) arriving at 1950 crosses the window
        at [2000, 2100): it must absorb the full 100-cycle tRFC, not
        sail through because it *arrived* outside the window."""
        bank = Bank(_timing())
        start, finish, hit = bank.access(row=0, arrival=1950)
        assert not hit
        assert bank.timing.miss_cycles == 148
        assert start == 1950
        assert finish == 2198  # 1950 + 148 + 100, not 2098

    def test_arrival_inside_a_window_waits_for_it_to_close(self):
        bank = Bank(_timing())
        start, finish, _ = bank.access(row=0, arrival=2050)
        assert start == 2100
        assert finish == 2100 + 148

    def test_backlog_crossing_a_window_is_suspended(self):
        """Queued work (not just in-service work) is suspended: two
        back-to-back conflicts starting at 1800 straddle the window."""
        bank = Bank(_timing())
        bank.access(row=0, arrival=1800)            # busy until 1948
        _, finish, _ = bank.access(row=1, arrival=1801)
        assert finish == 1948 + 148 + 100           # second request crosses

    def test_far_from_windows_matches_refresh_free_bank(self):
        plain = Bank(DramTiming())
        refreshed = Bank(_timing())
        for row, arrival in [(0, 200), (0, 400), (3, 600)]:
            assert plain.access(row, arrival) == refreshed.access(row, arrival)

    @given(arrivals=st.lists(st.integers(0, 50_000), min_size=1,
                             max_size=40), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_useful_clock_recursion_is_exact(self, arrivals, data):
        """The bank recursion on the useful clock equals the classic
        recursion run in useful time, mapped back to wall time."""
        arrivals = sorted(arrivals)
        rows = [data.draw(st.integers(0, 3)) for _ in arrivals]
        timing = _timing()
        sched = RefreshSchedule(2000, 100)
        bank = Bank(timing)
        oracle = Bank(DramTiming())  # refresh-free twin on the useful clock
        for row, arrival in zip(rows, arrivals):
            start, finish, hit = bank.access(row, arrival)
            u_start, u_finish, o_hit = oracle.access(row, sched.useful(arrival))
            assert hit == o_hit
            assert start == sched.wall(u_start, begin=True)
            assert finish == sched.wall(u_finish)


# ---------------------------------------------------------------------------
# simulator integration
# ---------------------------------------------------------------------------

def _cfg(*, refresh, algorithm="live"):
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        offpkg_dram=offpkg_dram_timing(refresh=refresh),
        onpkg_dram=onpkg_dram_timing(refresh=refresh),
        migration=MigrationConfig(
            macro_page_bytes=64 * KB, swap_interval=500, algorithm=algorithm,
        ),
    )


class TestSimulatorWiring:
    def test_engine_gets_refresh_schedules(self):
        sim = EpochSimulator(_cfg(refresh=True))
        assert sim.engine.offpkg_refresh.window == 512
        assert sim.engine.onpkg_refresh.window == 192
        assert sim.engine.offpkg_refresh.interval == 24960

    def test_disabled_config_gets_none(self):
        sim = EpochSimulator(_cfg(refresh=False))
        assert sim.engine.offpkg_refresh is None
        assert sim.engine.onpkg_refresh is None

    def test_refresh_is_a_pure_tax_without_migration(self):
        trace = synthetic_trace(n=20_000, footprint=12 * MB, seed=7)
        base = EpochSimulator(_cfg(refresh=False), migrate=False).run(trace)
        taxed = EpochSimulator(_cfg(refresh=True), migrate=False).run(trace)
        assert taxed.total_latency > base.total_latency
        # a ~2% duty cycle cannot blow the average up by more than a
        # few percent on a non-adversarial trace
        assert taxed.average_latency < base.average_latency * 1.10

    def test_refresh_run_is_deterministic(self):
        trace = synthetic_trace(n=10_000, footprint=12 * MB, seed=11)
        a = EpochSimulator(_cfg(refresh=True)).run(trace)
        b = EpochSimulator(_cfg(refresh=True)).run(trace)
        assert a.total_latency == b.total_latency
        assert a.epoch_latency == b.epoch_latency
        assert a.swaps_triggered == b.swaps_triggered
