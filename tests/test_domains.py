"""The flow-sensitive domain-confusion analyzer.

Covers the domain lattice, the three seeding tiers (signatures,
inline annotations, name inference), flow propagation (assignment
chains, augmented assignment, ternaries, branch joins, loop fixpoint),
the suppression/annotation escape hatches, and a known-bug corpus: a
planted wall-vs-useful clock comparison and a page-vs-frame address
mix-up that the analyzer must catch with step-indexed dataflow traces.
"""

import textwrap

import pytest

from repro.analysis.domains import (
    Confidence,
    Domain,
    DomainValue,
    MAX_STEPS,
    UNKNOWN,
    conflict,
    extract_annotations,
    infer_domain,
    join,
    name_tokens,
    parse_directive,
)
from repro.analysis.lint import Severity, lint_file, resolve_rules

SIM_PATH = "src/repro/simulator/example.py"


def findings_for(source, path=SIM_PATH):
    rules = resolve_rules(select=["domain-confusion"])
    return lint_file(path, rules, source=textwrap.dedent(source))


# ----------------------------------------------------------------------
# the lattice
# ----------------------------------------------------------------------
class TestModel:
    def test_join_same_domain_keeps_weaker_confidence(self):
        a = DomainValue(Domain.WALL_CYCLES, Confidence.DECLARED)
        b = DomainValue(Domain.WALL_CYCLES, Confidence.INFERRED)
        assert join(a, b).confidence is Confidence.INFERRED
        assert join(a, b).domain is Domain.WALL_CYCLES

    def test_join_differing_domains_is_unknown(self):
        a = DomainValue(Domain.WALL_CYCLES, Confidence.DECLARED)
        b = DomainValue(Domain.USEFUL_CYCLES, Confidence.DECLARED)
        assert not join(a, b).known

    def test_join_with_unknown_is_unknown(self):
        a = DomainValue(Domain.DRAM_ROW, Confidence.DECLARED)
        assert not join(a, UNKNOWN).known
        assert not join(UNKNOWN, a).known

    def test_conflict_requires_both_known(self):
        a = DomainValue(Domain.VIRTUAL_PAGE, Confidence.INFERRED)
        b = DomainValue(Domain.MACHINE_FRAME, Confidence.INFERRED)
        assert conflict(a, b)
        assert not conflict(a, UNKNOWN)
        assert not conflict(a, a)

    def test_provenance_steps_are_bounded(self):
        v = DomainValue(Domain.BYTE_ADDR, Confidence.INFERRED)
        for i in range(3 * MAX_STEPS):
            v = v.step(i, f"hop {i}")
        assert len(v.steps) == MAX_STEPS
        assert v.steps[-1] == (3 * MAX_STEPS - 1, f"hop {3 * MAX_STEPS - 1}")


# ----------------------------------------------------------------------
# name inference (the lowest tier)
# ----------------------------------------------------------------------
class TestInference:
    @pytest.mark.parametrize(
        "name,domain",
        [
            ("wall_arrivals", Domain.WALL_CYCLES),
            ("useful_departure", Domain.USEFUL_CYCLES),
            ("page", Domain.VIRTUAL_PAGE),
            ("vpage", Domain.VIRTUAL_PAGE),
            ("machine_page", Domain.MACHINE_FRAME),
            ("slot", Domain.MACHINE_FRAME),
            ("frame", Domain.MACHINE_FRAME),
            ("open_row", Domain.DRAM_ROW),
            ("addr", Domain.BYTE_ADDR),
            ("byte_offset", Domain.BYTE_ADDR),
            ("subblock", Domain.SUBBLOCK_IDX),
        ],
    )
    def test_vocabulary(self, name, domain):
        assert infer_domain(name) is domain

    @pytest.mark.parametrize(
        "name",
        ["n_slots", "page_count", "row_bits", "subblock_bytes",
         "addr_mask", "frame_size", "wall_budget", "swap_interval"],
    )
    def test_quantity_stop_tokens_infer_nothing(self, name):
        assert infer_domain(name) is None

    def test_machine_page_beats_page(self):
        # multi-token rules run before the singles they shadow
        assert infer_domain("machine_pages") is Domain.MACHINE_FRAME

    def test_camel_case_split(self):
        assert name_tokens("openRowIdx") == ["open", "row", "idx"]
        assert infer_domain("openRow") is Domain.DRAM_ROW


# ----------------------------------------------------------------------
# inline annotations (the middle tier)
# ----------------------------------------------------------------------
class TestAnnotations:
    def test_bare_form(self):
        ann = parse_directive(1, "machine_frame")
        assert ann.value is Domain.MACHINE_FRAME
        assert not ann.errors

    def test_bare_form_with_prose(self):
        ann = parse_directive(1, "wall_cycles - pre-warp instants")
        assert ann.value is Domain.WALL_CYCLES
        assert not ann.errors

    def test_named_form(self):
        ann = parse_directive(1, "t=wall_cycles, return=useful_cycles")
        assert ann.names == {
            "t": Domain.WALL_CYCLES,
            "return": Domain.USEFUL_CYCLES,
        }

    def test_unknown_spelling_is_an_error(self):
        ann = parse_directive(1, "wall_cycle")
        assert ann.value is None
        assert ann.errors == ("wall_cycle",)

    def test_extraction_skips_string_literals(self):
        src = 's = "# repro-domain: wall_cycles"\nt = 1  # repro-domain: useful_cycles\n'
        anns = extract_annotations(src)
        assert list(anns) == [2]
        assert anns[2].value is Domain.USEFUL_CYCLES

    def test_unknown_domain_reported_as_finding(self):
        found = findings_for("x = 1  # repro-domain: wall_cycle\n")
        assert len(found) == 1
        assert "unknown domain 'wall_cycle'" in found[0].message
        assert found[0].severity is Severity.ERROR


# ----------------------------------------------------------------------
# the known-bug corpus (the acceptance criterion)
# ----------------------------------------------------------------------
CLOCK_BUG = """
def latency(sched, arrival):
    arrival_u = sched.useful(arrival)
    start = sched.wall(arrival_u, begin=True)
    if start < arrival_u:
        return 0
    return start
"""

ADDRESS_BUG = """
def displacement(table, amap, addr):
    page = amap.page_of(addr)
    slot = table.slot_of(page)
    return page - slot
"""


class TestKnownBugCorpus:
    def test_wall_vs_useful_compare_is_caught(self):
        found = findings_for(CLOCK_BUG)
        assert len(found) == 1
        f = found[0]
        assert f.rule == "domain-confusion"
        assert "comparison" in f.message
        assert "wall_cycles" in f.message and "useful_cycles" in f.message
        # both sides flow from declared signatures -> error
        assert f.severity is Severity.ERROR
        assert "RefreshSchedule" in f.message  # the conversion hint

    def test_clock_bug_has_step_indexed_trace(self):
        (f,) = findings_for(CLOCK_BUG)
        assert f.trace, "finding must carry a dataflow trace"
        for i, step in enumerate(f.trace):
            assert step.startswith(f"step {i}: line "), step
        joined = "\n".join(f.trace)
        # the trace walks both operands to their signature origins
        assert "useful" in joined and "wall" in joined
        assert "mixed with" in f.trace[-1]

    def test_page_vs_frame_arithmetic_is_caught(self):
        found = findings_for(ADDRESS_BUG)
        assert len(found) == 1
        f = found[0]
        assert "arithmetic" in f.message
        assert "virtual_page" in f.message and "machine_frame" in f.message
        assert f.severity is Severity.ERROR

    def test_address_bug_trace_tracks_both_operands(self):
        (f,) = findings_for(ADDRESS_BUG)
        joined = "\n".join(f.trace)
        assert "page_of" in joined          # where the page came from
        assert "slot_of" in joined          # where the frame came from
        for i, step in enumerate(f.trace):
            assert step.startswith(f"step {i}: line "), step

    def test_trace_excluded_from_fingerprint(self):
        (f,) = findings_for(CLOCK_BUG)
        import dataclasses
        bare = dataclasses.replace(f, trace=())
        assert bare.fingerprint == f.fingerprint


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
class TestPropagation:
    def test_assignment_chain(self):
        found = findings_for(
            """
            def f(sched, t0):
                u = sched.useful(t0)
                v = u
                w = v
                return w + sched.wall(u)
            """
        )
        assert len(found) == 1
        assert "arithmetic" in found[0].message

    def test_augmented_assignment(self):
        found = findings_for(
            """
            def f(sched, t):
                acc = sched.useful(t)
                acc += sched.wall(acc)
                return acc
            """
        )
        assert len(found) == 1
        assert "arithmetic" in found[0].message

    def test_ternary_selection(self):
        found = findings_for(
            """
            def f(sched, t, flag):
                a = sched.useful(t)
                b = sched.wall(a)
                return a if flag else b
            """
        )
        assert len(found) == 1
        assert "selection" in found[0].message

    def test_ternary_with_agreeing_arms_is_clean(self):
        assert not findings_for(
            """
            def f(sched, t, flag):
                a = sched.useful(t)
                return a if flag else a + 1
            """
        )

    def test_branch_join_keeps_agreeing_domain(self):
        found = findings_for(
            """
            def f(sched, t, flag):
                if flag:
                    x = sched.useful(t)
                else:
                    x = sched.useful(t) + 1
                return x - sched.wall(x)
            """
        )
        assert len(found) == 1
        assert "arithmetic" in found[0].message

    def test_branch_join_with_unknown_is_conservative(self):
        assert not findings_for(
            """
            def f(sched, t, flag):
                if flag:
                    x = sched.useful(t)
                else:
                    x = 0
                return x - sched.wall(t)
            """
        )

    def test_loop_fixpoint_flows_late_domains_back(self):
        found = findings_for(
            """
            def f(sched, t):
                u = 0
                gap = 0
                for _ in range(3):
                    gap = u - sched.wall(t)
                    u = sched.useful(t)
                return gap
            """
        )
        assert len(found) == 1
        assert "arithmetic" in found[0].message

    def test_tuple_unpack_from_signature(self):
        found = findings_for(
            """
            def f(table, pages):
                on, machine = table.resolve_many(pages)
                return machine - pages
            """
        )
        assert len(found) == 1
        assert "machine_frame" in found[0].message
        assert "virtual_page" in found[0].message

    def test_argument_against_declared_parameter(self):
        found = findings_for(
            """
            def f(table, page):
                return table.page_in_slot(page)
            """
        )
        assert len(found) == 1
        assert "argument" in found[0].message

    def test_return_against_declared_signature(self):
        # analyzing the body of a registered qualname seeds the
        # parameter and expected-return domains
        found = findings_for(
            """
            class TranslationTable:
                def slot_of(self, page):
                    return page
            """
        )
        assert len(found) == 1
        assert "return" in found[0].message
        assert found[0].severity is Severity.ERROR

    def test_container_store_against_inferred_target(self):
        found = findings_for(
            """
            def f(mirror, page):
                mirror.machine_of[page] = page
            """
        )
        assert len(found) == 1
        assert "assignment" in found[0].message


# ----------------------------------------------------------------------
# each domain participates
# ----------------------------------------------------------------------
class TestDomainCatalog:
    def test_row_vs_byte_addr(self):
        found = findings_for(
            """
            def f(geom, addr):
                row = geom.rows_of(addr)
                return row == addr
            """
        )
        assert len(found) == 1
        assert "dram_row" in found[0].message

    def test_subblock_vs_offset(self):
        found = findings_for(
            """
            def f(amap, addr):
                return amap.subblock_of(addr) == amap.offset_of(addr)
            """
        )
        assert len(found) == 1
        assert "subblock_idx" in found[0].message

    def test_clock_never_mixes_with_address(self):
        found = findings_for(
            """
            def f(sched, amap, t, addr):
                u = sched.useful(t)
                page = amap.page_of(addr)
                return u + page
            """
        )
        assert len(found) == 1
        assert "never mix" in found[0].message


# ----------------------------------------------------------------------
# escape hatches and noise control
# ----------------------------------------------------------------------
class TestEscapeHatches:
    def test_inline_suppression(self):
        assert not findings_for(
            """
            def f(page, slot):
                return page == slot  # repro-lint: disable=domain-confusion
            """
        )

    def test_cast_annotation_silences_identity_pun(self):
        assert not findings_for(
            """
            def f(mirror, page):
                mirror.machine_of[page] = page  # repro-domain: machine_frame
            """
        )

    def test_annotation_overrides_inference(self):
        # 'deadline' infers nothing; the annotation makes it useful-domain
        found = findings_for(
            """
            def f(sched, t):
                deadline = sched.wall(t)  # repro-domain: useful_cycles
                return deadline - sched.wall(t)
            """
        )
        assert len(found) == 1
        assert "useful_cycles" in found[0].message

    def test_def_line_annotation_seeds_params_and_return(self):
        found = findings_for(
            """
            def f(x):  # repro-domain: x=wall_cycles, return=useful_cycles
                return x
            """
        )
        assert len(found) == 1
        assert "return" in found[0].message
        # both sides annotated -> error severity
        assert found[0].severity is Severity.ERROR

    def test_inferred_side_downgrades_to_warning(self):
        found = findings_for(
            """
            def f(page, slot):
                return page == slot
            """
        )
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_quantity_comparisons_stay_clean(self):
        assert not findings_for(
            """
            def f(pages, n_slots):
                hot = 0
                for page in pages:
                    if page < n_slots:
                        hot += 1
                return hot
            """
        )

    def test_multiplication_breaks_the_taint(self):
        # unit conversions (scaling, shifting) produce a new quantity
        assert not findings_for(
            """
            def f(sched, t, page_bytes):
                u = sched.useful(t)
                scaled = u * 2
                return scaled + sched.wall(t)
            """
        )

    def test_rule_skips_test_files(self):
        found = findings_for(CLOCK_BUG, path="tests/test_example.py")
        assert not found


# ----------------------------------------------------------------------
# the shipped tree is (and stays) clean
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_has_no_domain_confusions(self):
        from repro.analysis.lint import run_lint

        report = run_lint(["src"], select=["domain-confusion"], root=".")
        assert report.exit_code == 0, report.format_text()
