"""Multi-tenant translation domains: differential isolation harness.

Three layers of evidence that the tenancy subsystem is safe:

* **bit-identity** — a single tenant run through the full multi-tenant
  path (scheduler, domain translation, QoS policy, reclamation) is
  bit-identical to a plain ``EpochSimulator`` run of the same trace;
* **isolation** — with data-content tracking on, no tenant ever reads a
  sub-block last written by another tenant: the ``ShadowMemory`` proves
  every read returns the last write *to the page*, and the
  ``IsolationOracle`` proves the writer was never a foreign tenant
  (including the deliberate no-scrub leak the shadow alone cannot see);
* **property tests** — random tenant mixes x churn x quota policies
  keep ``TranslationTable.audit()`` clean, never exceed static quotas,
  and always leave reclaimed windows reusable.

Plus regression tests for the two reclamation staleness bugs: the
monitor's ``np.unique`` fold surviving a release, and the table's
``empty_slot`` epoch cache going stale across the direct-write
reclamation path.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import MigrationConfig, SystemConfig
from repro.core.simulator import EpochSimulator
from repro.errors import TenancyError, TranslationTableError
from repro.migration.table import TranslationTable
from repro.stats.report import tenant_table
from repro.tenancy import (
    HYPERVISOR,
    ChunkEvent,
    HotSetAwarePolicy,
    MultiTenantSimulator,
    ProportionalSharePolicy,
    StaticQuotaPolicy,
    TenantRegistry,
    TenantScheduler,
    TenantSpec,
)
from repro.trace.record import make_chunk
from repro.units import KB, MB
from repro.workloads.tenants import tenant_mix

ALGORITHMS = ("N", "N-1", "live")


def _cfg(algorithm="live", swap_interval=400):
    return SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        migration=MigrationConfig(
            macro_page_bytes=64 * KB,
            swap_interval=swap_interval,
            algorithm=algorithm,
        ),
    )


def _trace(n=20_000, seed=0, span_bytes=14 * MB, writes=True, t0=0):
    """Hot/cold mixture over ``span_bytes`` (virtual or physical)."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, span_bytes)
    addr = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 256 * KB, n)) % span_bytes,
        rng.integers(0, span_bytes, n),
    )
    addr = (addr // 64) * 64
    rw = (rng.random(n) < 0.3).astype(np.int8) if writes else 0
    return make_chunk(
        addr.astype(np.int64),
        time=t0 + np.cumsum(rng.integers(1, 30, n)),
        rw=rw,
    )


def _scalar_fields(result):
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name not in ("epoch_latency", "degradation_events",
                          "fused_epochs", "stepwise_epochs", "tenants")
    }


# ---------------------------------------------------------------------------
# differential oracle: single tenant == plain simulator, bit for bit
# ---------------------------------------------------------------------------
class TestSingleTenantBitIdentity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("fused", (True, False))
    def test_bit_identical(self, algorithm, fused):
        cfg = _cfg(algorithm)
        trace = _trace()
        plain = EpochSimulator(cfg, fused=fused).run(trace)
        mts = MultiTenantSimulator(
            cfg, policy=ProportionalSharePolicy(), fused=fused
        )
        amap = cfg.address_map()
        mts.add_tenant(
            TenantSpec(tenant_id=0, name="solo", n_pages=amap.ghost_page),
            trace,
        )
        shared = mts.run()
        assert _scalar_fields(shared) == _scalar_fields(plain)
        assert shared.epoch_latency == plain.epoch_latency
        assert shared.swaps_triggered > 0
        assert shared.swaps_suppressed_qos == 0
        assert shared.tenants[0].accesses == len(trace)
        mts.table.audit()

    def test_bit_identical_with_data_tracking(self):
        cfg = _cfg()
        trace = _trace()
        plain = EpochSimulator(cfg, track_data=True).run(trace)
        mts = MultiTenantSimulator(
            cfg, policy=ProportionalSharePolicy(), track_data=True
        )
        amap = cfg.address_map()
        mts.add_tenant(
            TenantSpec(tenant_id=0, name="solo", n_pages=amap.ghost_page),
            trace,
        )
        shared = mts.run()
        assert _scalar_fields(shared) == _scalar_fields(plain)
        assert shared.data_violations == 0
        assert mts.oracle.n_violations == 0

    def test_per_tenant_attribution_totals_match(self):
        cfg = _cfg()
        mts = MultiTenantSimulator(cfg, solo_baselines=True)
        amap = cfg.address_map()
        mts.add_tenant(
            TenantSpec(tenant_id=0, name="solo", n_pages=amap.ghost_page),
            _trace(),
        )
        result = mts.run()
        m = result.tenants[0]
        assert m.accesses == result.n_accesses
        assert m.total_latency == result.total_latency
        assert m.onpkg_accesses == result.onpkg_accesses
        assert m.swaps_triggered == result.swaps_triggered
        # alone on the machine: the solo baseline is the same simulation
        assert m.slowdown == pytest.approx(1.0)
        assert m.interference_index == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# isolation: churned multi-tenant runs never cross data between tenants
# ---------------------------------------------------------------------------
class TestIsolation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_no_cross_tenant_reads_under_churn(self, algorithm):
        cfg = _cfg(algorithm)
        mts = MultiTenantSimulator(
            cfg, policy=ProportionalSharePolicy(), track_data=True
        )
        for spec, trace in tenant_mix(
            cfg, 4, accesses=4_000, seed=3, churn=True
        ):
            mts.add_tenant(spec, trace)
        result = mts.run()
        assert result.data_violations == 0
        assert mts.oracle.n_violations == 0
        assert not mts.sim.shadow.verify_table(mts.table)
        mts.table.audit()
        # 4 base tenants + the 2 churn arrivals all reclaimed
        assert mts.engine.tenants_released == 6
        assert sum(m.accesses for m in result.tenants.values()) == result.n_accesses

    def _residue_setup(self, scrub_on_free):
        """Tenant 0 writes its whole window and departs; tenant 1 then
        reads the recycled window without writing first."""
        cfg = _cfg()
        amap = cfg.address_map()
        n_pages = amap.ghost_page  # whole data space: windows must recycle
        addr = np.arange(n_pages, dtype=np.int64) * amap.macro_page_bytes
        writer = make_chunk(addr, time=np.arange(n_pages), rw=1)
        reader = make_chunk(addr, time=np.arange(n_pages), rw=0)
        mts = MultiTenantSimulator(
            cfg, track_data=True, scrub_on_free=scrub_on_free
        )
        mts.add_tenant(
            TenantSpec(tenant_id=0, name="writer", n_pages=n_pages), writer
        )
        mts.add_tenant(
            TenantSpec(tenant_id=1, name="reader", n_pages=n_pages,
                       arrive_epoch=10),
            reader,
        )
        return mts, mts.run(), n_pages

    def test_unscrubbed_release_leaks_and_only_the_oracle_sees_it(self):
        mts, result, n_pages = self._residue_setup(scrub_on_free=False)
        # the shadow is blind: page ids and generations still match
        assert result.data_violations == 0
        # the oracle is not: every read observed tenant 0's residue
        assert mts.oracle.n_violations == n_pages
        v = mts.oracle.violations[0]
        assert (v.reader, v.writer) == (1, 0)
        assert "last written by tenant 0" in v.format()

    def test_scrub_on_free_cleanses_the_recycled_window(self):
        mts, result, n_pages = self._residue_setup(scrub_on_free=True)
        assert result.data_violations == 0
        assert mts.oracle.n_violations == 0
        assert not mts.sim.shadow.verify_table(mts.table)
        # the freed cells changed hands to the hypervisor before reuse
        assert (mts.oracle.writer != HYPERVISOR).sum() > 0  # tenant 1's reads left no marks
        mts.table.audit()


# ---------------------------------------------------------------------------
# QoS capacity partitioning
# ---------------------------------------------------------------------------
class TestQoS:
    def test_zero_quota_vetoes_every_promotion(self):
        cfg = _cfg()
        amap = cfg.address_map()
        mts = MultiTenantSimulator(cfg, policy=StaticQuotaPolicy())
        mts.add_tenant(
            TenantSpec(tenant_id=0, name="capped", n_pages=amap.ghost_page,
                       quota_slots=0),
            _trace(),
        )
        result = mts.run()
        assert result.swaps_triggered == 0
        assert result.swaps_suppressed_qos > 0
        mts.table.audit()

    def test_static_quota_is_never_exceeded(self):
        cfg = _cfg()
        amap = cfg.address_map()
        n_pages = amap.ghost_page // 2
        policy = StaticQuotaPolicy()
        observed = []

        def cb(sim, event):
            usage = sim.policy.usage()
            quotas = sim.policy.quotas()
            for tenant, used in usage.items():
                assert used <= quotas[tenant], (
                    f"tenant {tenant} uses {used} slots over quota "
                    f"{quotas[tenant]}"
                )
            observed.append(dict(usage))

        mts = MultiTenantSimulator(cfg, policy=policy, chunk_callback=cb)
        for i in range(2):
            mts.add_tenant(
                TenantSpec(tenant_id=i, name=f"t{i}", n_pages=n_pages,
                           quota_slots=3 + 2 * i),
                _trace(n=12_000, seed=i, span_bytes=n_pages * 64 * KB),
            )
        result = mts.run()
        assert observed, "chunk callback never ran"
        # the cap actually bit: somebody reached its quota at least once
        assert any(
            usage.get(i, 0) == 3 + 2 * i for usage in observed for i in range(2)
        )
        assert result.swaps_triggered > 0
        mts.table.audit()

    def test_proportional_policy_splits_by_weight(self):
        cfg = _cfg()
        table = TranslationTable(cfg.address_map())
        registry = TenantRegistry(table)
        registry.admit(TenantSpec(tenant_id=0, name="a", n_pages=10, weight=3.0))
        registry.admit(TenantSpec(tenant_id=1, name="b", n_pages=10, weight=1.0))
        policy = ProportionalSharePolicy()
        policy.bind(registry, table)
        quotas = policy.quotas()
        cap = policy.capacity()
        assert quotas[0] == int(cap * 3.0 / 4.0)
        assert quotas[1] == int(cap * 1.0 / 4.0)
        assert quotas[0] + quotas[1] <= cap
        # quota cache keys on the registry version
        registry.release(1)
        assert 1 not in policy.quotas()

    def test_hot_set_policy_follows_demand(self):
        cfg = _cfg()
        table = TranslationTable(cfg.address_map())
        registry = TenantRegistry(table)
        for i in range(2):
            registry.admit(TenantSpec(tenant_id=i, name=f"t{i}", n_pages=10))
        policy = HotSetAwarePolicy(alpha=0.5, floor=1)
        policy.bind(registry, table)
        cold = policy.quotas()
        assert cold[0] == cold[1]  # no demand yet: weight fallback
        policy.observe(0, 900)
        policy.observe(1, 100)
        hot = policy.quotas()
        assert hot[0] > hot[1] >= 1
        assert hot[0] + hot[1] <= policy.capacity()

    def test_hot_set_policy_validates_parameters(self):
        with pytest.raises(TenancyError):
            HotSetAwarePolicy(alpha=0.0)
        with pytest.raises(TenancyError):
            HotSetAwarePolicy(floor=-1)


# ---------------------------------------------------------------------------
# reclamation regressions (the satellite fix): stale caches on release
# ---------------------------------------------------------------------------
class TestReclamationStaleness:
    def test_empty_slot_cache_invalidated_by_release(self):
        """release_pages writes the right column directly (no _set_cam),
        which used to leave the epoch-boundary empty-slot cache stale."""
        table = TranslationTable(_cfg().address_map())
        boot_empty = table.empty_slot()  # primes the cache
        assert boot_empty == table.n_slots - 1
        outcome = table.release_pages([5])
        # the ghost role relocated onto the freed identity row 5
        assert outcome.new_empty == 5
        assert (("mach", table.amap.ghost_page), ("slot", boot_empty)) in outcome.moves
        assert table.empty_slot() == 5  # stale cache would still say 31
        assert set(outcome.undone_slots) == {boot_empty, 5}
        table.audit()

    def test_release_copies_exactly_the_surviving_side(self):
        table = TranslationTable(_cfg().address_map())
        table.set_pair(2, 100)  # page 100 promoted into slot 2
        # releasing the promoted page: home page 2 survives, comes home
        outcome = table.release_pages([100])
        assert outcome.moves[0] == (("mach", 100), ("slot", 2))
        assert table.page_in_slot(2) == 2
        table.audit()

        table.set_pair(3, 200)
        # releasing the home page: occupant 200 survives, goes home
        outcome = table.release_pages([3])
        assert (("slot", 3), ("mach", 200)) in outcome.moves
        table.audit()

    def test_release_of_both_sides_copies_nothing(self):
        table = TranslationTable(_cfg().address_map())
        table.set_pair(2, 100)
        outcome = table.release_pages([2, 100])
        assert not any(
            src[1] in (2, 100) or dst[1] in (2, 100)
            for src, dst in outcome.moves
        )
        table.audit()

    def test_release_requires_quiescence(self):
        table = TranslationTable(_cfg().address_map())
        table.set_pending(3, True)
        with pytest.raises(TranslationTableError, match="quiescent"):
            table.release_pages([100])

    def test_release_rejects_reserved_and_ghost_pages(self):
        amap = _cfg().address_map()
        table = TranslationTable(amap, reserved_pages={amap.ghost_page - 1})
        with pytest.raises(TranslationTableError, match="outside the data"):
            table.release_pages([amap.ghost_page])
        with pytest.raises(TranslationTableError, match="RAS spare"):
            table.release_pages([amap.ghost_page - 1])

    def test_monitor_unique_fold_purged_on_release(self):
        """A release is legal between the epoch fold and the swap
        evaluation; the dead page must not win the hottest ranking."""
        cfg = _cfg()
        sim = EpochSimulator(cfg)
        engine = sim.engine
        empty = np.zeros(0, dtype=np.int64)
        hot_page = 200
        engine.observe_epoch(
            empty, empty,
            np.full(50, hot_page, dtype=np.int64),
            np.arange(50, dtype=np.int64),
            off_subblocks=np.zeros(50, dtype=np.int64),
        )
        assert engine.monitor.hottest_page()[0] == hot_page
        assert engine._last_sb_pages is not None
        engine.release_tenant(100, [hot_page])
        # the np.unique fold and the sub-block recency are both purged
        assert engine.monitor.hottest_page() is None
        assert engine._last_sb_pages is None
        decision = engine.maybe_swap(100)
        assert not decision.triggered
        sim.table.audit()

    def test_forget_pages_resets_slot_recency(self):
        cfg = _cfg()
        engine = EpochSimulator(cfg).engine
        engine.monitor.slot_last_touch[4] = 99
        engine.monitor.slot_epoch_counts[4] = 7
        engine.forget_pages([], slots=[4])
        assert engine.monitor.slot_last_touch[4] == -1
        assert engine.monitor.slot_epoch_counts[4] == 0

    def test_release_counters_survive_checkpoint_roundtrip(self):
        cfg = _cfg()
        sim = EpochSimulator(cfg)
        sim.engine.swaps_suppressed_qos = 3
        sim.engine.tenants_released = 2
        sim.engine.reclaimed_bytes = 640 * KB
        state = sim.engine.state_dict()
        fresh = EpochSimulator(cfg).engine
        fresh.load_state_dict(state)
        assert fresh.swaps_suppressed_qos == 3
        assert fresh.tenants_released == 2
        assert fresh.reclaimed_bytes == 640 * KB
        # pre-tenancy checkpoints load with zeroed counters
        for key in ("swaps_suppressed_qos", "tenants_released",
                    "reclaimed_bytes"):
            del state[key]
        legacy = EpochSimulator(cfg).engine
        legacy.load_state_dict(state)
        assert legacy.swaps_suppressed_qos == 0
        assert legacy.tenants_released == 0
        assert legacy.reclaimed_bytes == 0


# ---------------------------------------------------------------------------
# registry / domain / scheduler units
# ---------------------------------------------------------------------------
class TestRegistry:
    def _registry(self):
        return TenantRegistry(TranslationTable(_cfg().address_map()))

    def test_first_fit_and_window_reuse(self):
        reg = self._registry()
        a = reg.admit(TenantSpec(tenant_id=0, name="a", n_pages=100))
        b = reg.admit(TenantSpec(tenant_id=1, name="b", n_pages=100))
        assert (a.base_page, b.base_page) == (0, 100)
        reg.release(0)
        c = reg.admit(TenantSpec(tenant_id=2, name="c", n_pages=100))
        assert c.base_page == 0  # the reclaimed window is reused

    def test_holes_merge_on_release(self):
        reg = self._registry()
        for i in range(3):
            reg.admit(TenantSpec(tenant_id=i, name=f"t{i}", n_pages=80))
        reg.release(0)
        reg.release(1)
        # two adjacent 80-page holes merged: a 160-page tenant fits
        big = reg.admit(TenantSpec(tenant_id=9, name="big", n_pages=160))
        assert big.base_page == 0

    def test_admission_failures(self):
        reg = self._registry()
        reg.admit(TenantSpec(tenant_id=0, name="a", n_pages=200))
        with pytest.raises(TenancyError, match="already admitted"):
            reg.admit(TenantSpec(tenant_id=0, name="dup", n_pages=1))
        with pytest.raises(TenancyError, match="no contiguous window"):
            reg.admit(TenantSpec(tenant_id=1, name="big", n_pages=200))
        with pytest.raises(TenancyError, match="not admitted"):
            reg.release(7)

    def test_ownership_lookup(self):
        reg = self._registry()
        reg.admit(TenantSpec(tenant_id=5, name="a", n_pages=10))
        reg.admit(TenantSpec(tenant_id=6, name="b", n_pages=10))
        owners = reg.tenant_of_pages(np.array([0, 9, 10, 19, 20, 254]))
        assert owners.tolist() == [5, 5, 6, 6, -1, -1]
        assert reg.owner_of(3) == 5
        assert reg.owner_of(200) is None

    def test_spec_validation(self):
        with pytest.raises(TenancyError):
            TenantSpec(tenant_id=0, name="x", n_pages=0)
        with pytest.raises(TenancyError):
            TenantSpec(tenant_id=0, name="x", n_pages=1, weight=0)
        with pytest.raises(TenancyError):
            TenantSpec(tenant_id=0, name="x", n_pages=1, quota_slots=-1)


class TestDomain:
    def test_translate_shifts_by_the_window_base(self):
        reg = TenantRegistry(TranslationTable(_cfg().address_map()))
        reg.admit(TenantSpec(tenant_id=0, name="a", n_pages=10))
        b = reg.admit(TenantSpec(tenant_id=1, name="b", n_pages=10))
        chunk = make_chunk(np.array([0, 64 * KB, 9 * 64 * KB]))
        out = b.translate(chunk)
        assert out.addr.tolist() == [
            10 * 64 * KB, 11 * 64 * KB, 19 * 64 * KB
        ]
        assert out.time.tolist() == chunk.time.tolist()

    def test_zero_base_translation_is_the_identity_object(self):
        reg = TenantRegistry(TranslationTable(_cfg().address_map()))
        a = reg.admit(TenantSpec(tenant_id=0, name="a", n_pages=10))
        chunk = make_chunk(np.array([0, 64 * KB]))
        assert a.translate(chunk) is chunk

    def test_out_of_footprint_addresses_rejected(self):
        reg = TenantRegistry(TranslationTable(_cfg().address_map()))
        a = reg.admit(TenantSpec(tenant_id=0, name="a", n_pages=10))
        with pytest.raises(TenancyError, match="exceed the declared footprint"):
            a.translate(make_chunk(np.array([10 * 64 * KB])))


class TestScheduler:
    def test_single_tenant_stream_is_untouched(self):
        sched = TenantScheduler(swap_interval=100)
        trace = _trace(n=450, span_bytes=1 * MB)
        sched.add(TenantSpec(tenant_id=0, name="solo", n_pages=16), trace)
        chunks = [e for e in sched.schedule() if isinstance(e, ChunkEvent)]
        assert [len(e.chunk) for e in chunks] == [100, 100, 100, 100, 50]
        rebuilt = np.concatenate([e.chunk.addr for e in chunks])
        assert np.array_equal(rebuilt, trace.addr)
        times = np.concatenate([e.chunk.time for e in chunks])
        assert np.array_equal(times, trace.time)  # zero shift everywhere

    def test_interleave_is_time_ordered_and_round_robin(self):
        sched = TenantScheduler(swap_interval=100)
        for i in range(2):
            sched.add(
                TenantSpec(tenant_id=i, name=f"t{i}", n_pages=16),
                _trace(n=300, seed=i, span_bytes=1 * MB),
            )
        events = list(sched.schedule())
        chunks = [e for e in events if isinstance(e, ChunkEvent)]
        assert [e.tenant_id for e in chunks] == [0, 1, 0, 1, 0, 1]
        last = -1
        for e in chunks:
            assert int(e.chunk.time[0]) >= last
            last = int(e.chunk.time[-1])

    def test_departure_and_late_arrival(self):
        sched = TenantScheduler(swap_interval=100)
        sched.add(
            TenantSpec(tenant_id=0, name="early", n_pages=16, depart_epoch=2),
            _trace(n=1_000, span_bytes=1 * MB),
        )
        sched.add(
            TenantSpec(tenant_id=1, name="late", n_pages=16, arrive_epoch=50),
            _trace(n=200, seed=1, span_bytes=1 * MB),
        )
        events = list(sched.schedule())
        kinds = [(type(e).__name__, e.tenant_id) for e in events]
        # tenant 0 is evicted after 2 epochs with trace left; the clock
        # then jumps to tenant 1's arrival
        assert ("DepartEvent", 0) in kinds
        admit_late = [e for e in events if type(e).__name__ == "AdmitEvent"
                      and e.tenant_id == 1]
        assert admit_late[0].epoch >= 50
        chunks0 = [e for e in events if isinstance(e, ChunkEvent)
                   and e.tenant_id == 0]
        assert sum(len(e.chunk) for e in chunks0) == 200  # 2 of 10 epochs

    def test_duplicate_tenant_rejected(self):
        sched = TenantScheduler(swap_interval=100)
        sched.add(TenantSpec(tenant_id=0, name="a", n_pages=1),
                  make_chunk(np.array([0])))
        with pytest.raises(TenancyError, match="already scheduled"):
            sched.add(TenantSpec(tenant_id=0, name="b", n_pages=1),
                      make_chunk(np.array([0])))


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
class TestReporting:
    def test_tenant_table_renders(self):
        cfg = _cfg()
        mts = MultiTenantSimulator(cfg, solo_baselines=True)
        for spec, trace in tenant_mix(cfg, 2, accesses=2_000, seed=1):
            mts.add_tenant(spec, trace)
        result = mts.run()
        table = tenant_table(result)
        text = table.render()
        assert "Per-tenant summary" in text
        assert "0:pgbench" in text and "1:indexer" in text
        assert "x" in text  # slowdown column filled from the baselines

    def test_tenant_table_requires_tenant_metrics(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="no tenant metrics"):
            tenant_table(EpochSimulator(_cfg()).run(make_chunk([])))

    def test_run_is_one_shot(self):
        mts = MultiTenantSimulator(_cfg())
        mts.run()
        with pytest.raises(TenancyError, match="one-shot"):
            mts.run()


# ---------------------------------------------------------------------------
# property test: random mixes x churn x policies keep every invariant
# ---------------------------------------------------------------------------
POLICY_KINDS = ("none", "static", "proportional", "hotset")


def _make_policy(kind):
    return {
        "none": lambda: None,
        "static": StaticQuotaPolicy,
        "proportional": ProportionalSharePolicy,
        "hotset": lambda: HotSetAwarePolicy(alpha=0.4, floor=1),
    }[kind]()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n_tenants=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    policy_kind=st.sampled_from(POLICY_KINDS),
    churn=st.booleans(),
)
def test_random_mixes_keep_table_and_quota_invariants(
    n_tenants, seed, policy_kind, churn
):
    cfg = _cfg(swap_interval=200)
    mix = tenant_mix(cfg, n_tenants, accesses=1_400, seed=seed, churn=churn)
    if policy_kind == "static":
        mix = [
            (dataclasses.replace(spec, quota_slots=2 + spec.tenant_id), trace)
            for spec, trace in mix
        ]
    policy = _make_policy(policy_kind)

    def cb(sim, event):
        sim.table.check_invariants()
        if policy_kind == "static":
            usage = sim.policy.usage()
            quotas = sim.policy.quotas()
            for tenant, used in usage.items():
                assert used <= quotas.get(tenant, used)

    mts = MultiTenantSimulator(cfg, policy=policy, chunk_callback=cb)
    for spec, trace in mix:
        mts.add_tenant(spec, trace)
    result = mts.run()
    mts.table.audit()
    # every tenant (base + churn arrivals) departed and was reclaimed
    assert mts.engine.tenants_released == len(mix)
    # reclaimed windows are reusable: the whole space is free again...
    assert mts.registry.free_pages == mts.registry.limit
    # ...and a full-space tenant is admissible on the spot
    mts.registry.admit(
        TenantSpec(tenant_id=99, name="next", n_pages=mts.registry.limit)
    )
    assert result.n_accesses == sum(m.accesses for m in result.tenants.values())
