"""End-to-end methodology test — the paper's own pipeline.

Section IV collects main-memory traces by running workloads through a
full-system simulator's cache hierarchy. Reproduce that flow: generate a
CPU reference stream, filter it through the L1/L2/L3 hierarchy, feed the
surviving (post-LLC) accesses to the heterogeneous memory, and check the
whole chain behaves.
"""

import numpy as np
import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.stackdist import StackDistanceProfile
from repro.config import CacheHierarchyConfig, CacheLevelConfig, MigrationConfig, SystemConfig
from repro.core.hetero_memory import HeterogeneousMainMemory, baseline_latency
from repro.units import KB, MB
from repro.workloads.registry import get_workload


def small_caches() -> CacheHierarchyConfig:
    return CacheHierarchyConfig(
        l1=CacheLevelConfig(4 * KB, 4, 2),
        l2=CacheLevelConfig(16 * KB, 8, 5),
        l3=CacheLevelConfig(256 * KB, 16, 25, shared=True),
        n_cores=4,
    )


def memory_system() -> SystemConfig:
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=64 * KB, swap_interval=500
        ),
    )


@pytest.fixture(scope="module")
def pipeline():
    workload = get_workload("pgbench", footprint_bytes=48 * MB)
    refs = workload.generate(120_000, seed=3)
    hierarchy = CacheHierarchy(small_caches())
    profile = StackDistanceProfile(refs.addr)
    memory_trace = hierarchy.memory_trace(refs, profile)
    return refs, profile, hierarchy, memory_trace


class TestPipeline:
    def test_hierarchy_filters_most_references(self, pipeline):
        refs, profile, hierarchy, memory_trace = pipeline
        assert 0 < len(memory_trace) < len(refs)
        stats = hierarchy.analyze(profile)
        assert len(memory_trace) == pytest.approx(
            stats.memory_fraction * len(refs), rel=1e-9
        )

    def test_filtered_trace_is_valid(self, pipeline):
        _, _, _, memory_trace = pipeline
        memory_trace.validate()
        assert (np.diff(memory_trace.time) >= 0).all()

    def test_post_llc_stream_keeps_less_locality(self, pipeline):
        """The caches strip the short-distance reuse, so the post-LLC
        stream is less skewed than the raw reference stream."""
        from repro.trace.stats import access_skew

        refs, _, _, memory_trace = pipeline
        assert access_skew(memory_trace, 4096) <= access_skew(refs, 4096) + 0.05

    def test_migration_still_wins_on_filtered_trace(self, pipeline):
        _, _, _, memory_trace = pipeline
        cfg = memory_system()
        migrated = HeterogeneousMainMemory(cfg).run(memory_trace)
        static = baseline_latency(cfg, memory_trace, "static")
        assert migrated.swaps_triggered > 0
        assert migrated.onpkg_fraction > static.onpkg_fraction
