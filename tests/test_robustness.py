"""Robustness: degenerate geometries, hostile inputs, fuzzed configs.

The system must degrade gracefully (no swap, clear error) rather than
crash or corrupt state, whatever configuration a user reaches for.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.config import MigrationConfig, SystemConfig
from repro.errors import AddressError
from repro.trace.record import make_chunk
from repro.units import KB, MB


def system(total=64 * MB, onpkg=8 * MB, page=64 * KB, interval=200, algo="live"):
    return SystemConfig(
        total_bytes=total,
        onpkg_bytes=onpkg,
        migration=MigrationConfig(
            algorithm=algo, macro_page_bytes=page, swap_interval=interval
        ),
    )


class TestDegenerateGeometries:
    def test_single_slot_region(self):
        """macro page == on-package capacity: the N-1 design's only slot
        is the empty one — the system must run without ever swapping."""
        cfg = system(onpkg=1 * MB, page=1 * MB, interval=100)
        trace = make_chunk(
            np.arange(500) * 4096 % (32 * MB), time=np.arange(500) * 50
        )
        res = repro.HeterogeneousMainMemory(cfg).run(trace)
        assert res.swaps_triggered == 0
        assert res.n_accesses == 500

    def test_single_slot_basic_design_can_swap(self):
        """The N design keeps its one slot usable."""
        cfg = system(onpkg=1 * MB, page=1 * MB, interval=100, algo="N")
        rng = np.random.default_rng(0)
        trace = make_chunk(
            (8 * MB + rng.integers(0, 4, 2000) * 1 * MB) + rng.integers(0, 16, 2000) * 64,
            time=np.arange(2000) * 2000,
        )
        res = repro.HeterogeneousMainMemory(cfg).run(trace)
        assert res.swaps_triggered > 0

    def test_empty_and_single_access(self):
        cfg = system()
        assert repro.HeterogeneousMainMemory(cfg).run(make_chunk([])).n_accesses == 0
        assert repro.HeterogeneousMainMemory(cfg).run(make_chunk([0])).n_accesses == 1

    def test_whole_trace_on_one_offpkg_page(self):
        cfg = system(interval=100)
        trace = make_chunk(np.full(500, 40 * MB), time=np.arange(500) * 30)
        res = repro.HeterogeneousMainMemory(cfg).run(trace)
        assert res.swaps_triggered == 1  # promoted once, then it is hot on-package
        assert res.onpkg_fraction > 0.5

    def test_access_to_the_reserved_omega_page(self):
        """Hammering Ω itself must never trigger a migration of it."""
        cfg = system(interval=100)
        amap = cfg.address_map()
        addr = amap.ghost_page * amap.macro_page_bytes
        trace = make_chunk(np.full(500, addr), time=np.arange(500) * 30)
        res = repro.HeterogeneousMainMemory(cfg).run(trace)
        assert res.swaps_triggered == 0


class TestFuzzedConfigs:
    @settings(max_examples=15, deadline=None)
    @given(
        page_log2=st.integers(12, 20),          # 4 KB .. 1 MB
        interval=st.integers(50, 500),
        algo=st.sampled_from(["N", "N-1", "live"]),
        seed=st.integers(0, 100),
        os_assisted=st.booleans(),
        critical_block_first=st.booleans(),
    )
    def test_random_config_random_trace(
        self, page_log2, interval, algo, seed, os_assisted, critical_block_first
    ):
        page = 1 << page_log2
        cfg = SystemConfig(
            total_bytes=64 * MB,
            onpkg_bytes=8 * MB,
            migration=MigrationConfig(
                algorithm=algo,
                macro_page_bytes=page,
                swap_interval=interval,
                # os_assisted is derived: force it by moving the HW
                # translation floor just above / at the page size
                hw_min_page_bytes=page * 2 if os_assisted else page,
                critical_block_first=critical_block_first,
            ),
        )
        assert cfg.migration.os_assisted is os_assisted
        rng = np.random.default_rng(seed)
        n = 2_000
        hot = rng.integers(0, 64 * MB // 4096)
        blocks = np.where(
            rng.random(n) < 0.7,
            hot + rng.integers(0, 64, n),
            rng.integers(0, 64 * MB // 4096, n),
        ) % (64 * MB // 4096)
        trace = make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))
        sim = repro.HeterogeneousMainMemory(cfg)
        res = repro.SimulationResult()
        # feed one epoch at a time so the table's invariants are checked
        # at every epoch boundary, not just at the end of the run
        for start in range(0, n, interval):
            sim.simulator.run_into(trace[start : start + interval], res)
            sim.table.check_invariants()
        assert res.n_accesses == n
        assert res.onpkg_accesses + res.offpkg_accesses == n
        assert res.total_latency > 0


class TestHostileTraces:
    def test_simultaneous_timestamps(self):
        cfg = system()
        trace = make_chunk(np.arange(100) * 4096, time=np.zeros(100, dtype=np.int64))
        res = repro.HeterogeneousMainMemory(cfg).run(trace)
        assert res.n_accesses == 100

    def test_huge_time_gaps(self):
        cfg = system(interval=50)
        trace = make_chunk(
            np.arange(200) * 4096 % (64 * MB),
            time=np.arange(200, dtype=np.int64) * (1 << 40),
        )
        res = repro.HeterogeneousMainMemory(cfg).run(trace)
        assert res.n_accesses == 200

    def test_out_of_range_address_rejected_by_page_space(self):
        cfg = system()
        trace = make_chunk([cfg.total_bytes + 4096])
        with pytest.raises(AddressError, match="outside"):
            repro.HeterogeneousMainMemory(cfg).run(trace)
