"""Streaming trace→epoch fusion: chunk protocol and equivalence.

The contract (docs/API.md "Streaming traces"):

* chunk iterators deliver epoch-aligned views — peak memory is
  O(chunk), never O(trace);
* the *address stream* of ``SyntheticWorkload.stream`` is bit-identical
  to ``generate`` (same RNG walk); stamping uses per-part derived RNGs,
  so the stream is chunk-size invariant: any two chunkings of the same
  stream concatenate to the same records;
* feeding an epoch-aligned stream through ``run_stream`` is
  bit-identical to materializing the same stream and calling ``run``.
"""

import numpy as np
import pytest

from repro.config import MigrationConfig, SystemConfig
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.errors import TraceError
from repro.trace.record import make_chunk
from repro.trace.stream import (
    aligned_chunk_size,
    iter_chunks,
    materialize,
    rechunk,
)
from repro.units import KB, MB
from repro.workloads.registry import get_workload


def _wl(footprint=8 * MB):
    return get_workload("pgbench", footprint_bytes=footprint)


def _cfg(swap_interval=1_000):
    return SystemConfig(
        total_bytes=32 * MB,
        onpkg_bytes=4 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=64 * KB,
            swap_interval=swap_interval,
        ),
    )


class TestAlignedChunkSize:
    def test_rounds_up_to_whole_epochs(self):
        assert aligned_chunk_size(2_500, 1_000) == 3_000
        assert aligned_chunk_size(1_000, 1_000) == 1_000
        assert aligned_chunk_size(1, 1_000) == 1_000

    def test_rejects_nonpositive(self):
        with pytest.raises(TraceError):
            aligned_chunk_size(0, 1_000)
        with pytest.raises(TraceError):
            aligned_chunk_size(1_000, 0)


class TestIterChunks:
    def test_views_not_copies(self):
        trace = _wl().generate(10_000)
        chunks = list(iter_chunks(trace, 3_000))
        assert [len(c) for c in chunks] == [3_000, 3_000, 3_000, 1_000]
        # zero-copy: every chunk aliases the original records buffer
        for c in chunks:
            assert c.records.base is not None
        merged = materialize(iter_chunks(trace, 3_000))
        assert np.array_equal(merged.records, trace.records)

    def test_empty_trace(self):
        assert list(iter_chunks(make_chunk([]), 1_000)) == []


class TestWorkloadStream:
    def test_addresses_bit_identical_to_generate(self):
        wl = _wl()
        full = wl.generate(30_000, seed=3)
        streamed = materialize(wl.stream(30_000, seed=3))
        assert np.array_equal(streamed.addr, full.addr)
        assert len(streamed) == len(full)

    def test_chunk_size_invariance(self):
        wl = _wl()
        natural = materialize(wl.stream(25_000, seed=1))
        small = materialize(wl.stream(25_000, seed=1, chunk_accesses=1_000))
        large = materialize(wl.stream(25_000, seed=1, chunk_accesses=7_000))
        assert np.array_equal(natural.records, small.records)
        assert np.array_equal(natural.records, large.records)

    def test_rechunk_exact_window_sizes(self):
        wl = _wl()
        sizes = [len(c) for c in wl.stream(25_000, chunk_accesses=4_000)]
        assert sizes[:-1] == [4_000] * (len(sizes) - 1)
        assert sum(sizes) == 25_000

    def test_time_is_monotonic_across_chunks(self):
        last = -1
        for chunk in _wl().stream(20_000, chunk_accesses=3_000):
            assert int(chunk.time[0]) >= last
            assert bool((np.diff(chunk.time.astype(np.int64)) >= 0).all())
            last = int(chunk.time[-1])


class TestStreamingSimulation:
    def test_streaming_vs_materialized_bit_identical(self):
        cfg = _cfg()
        n = 40_000
        chunk = aligned_chunk_size(2_500, cfg.migration.swap_interval)
        wl = _wl()
        materialized = materialize(wl.stream(n, seed=2, chunk_accesses=chunk))
        r_mat = HeterogeneousMainMemory(cfg).run(materialized)
        r_stream = HeterogeneousMainMemory(cfg).run_stream(
            wl.stream(n, seed=2, chunk_accesses=chunk)
        )
        assert r_stream.total_latency == r_mat.total_latency
        assert r_stream.epoch_latency == r_mat.epoch_latency
        assert r_stream.swaps_triggered == r_mat.swaps_triggered
        assert r_stream.n_accesses == r_mat.n_accesses == n
        assert r_stream.duration_cycles == r_mat.duration_cycles

    def test_iter_chunks_stream_matches_run(self):
        # epoch-aligned views over a materialized trace reproduce run()
        cfg = _cfg()
        trace = _wl().generate(20_000, seed=5)
        r_run = HeterogeneousMainMemory(cfg).run(trace)
        r_stream = HeterogeneousMainMemory(cfg).run_stream(
            iter_chunks(trace, aligned_chunk_size(3_000,
                                                  cfg.migration.swap_interval))
        )
        assert r_stream.total_latency == r_run.total_latency
        assert r_stream.epoch_latency == r_run.epoch_latency

    def test_rechunk_roundtrip_over_uneven_parts(self):
        trace = _wl().generate(13_337, seed=7)
        parts = iter_chunks(trace, 997)  # deliberately epoch-misaligned
        merged = materialize(rechunk(parts, 4_000))
        assert np.array_equal(merged.records, trace.records)
