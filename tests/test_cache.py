"""Tests for the cache substrate: replacement, sets, stack distance,
hierarchy, the tags-in-DRAM L4 model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.dramcache import DramCacheModel
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.replacement import ClockPseudoLRU, LRUPolicy, MultiQueue
from repro.cache.sets import SetAssociativeCache, make_cache
from repro.cache.stackdist import COLD, StackDistanceProfile, stack_distances
from repro.config import CacheHierarchyConfig, CacheLevelConfig
from repro.errors import ConfigError
from repro.units import GB, KB, MB


class TestLRUPolicy:
    def test_victim_is_least_recent(self):
        lru = LRUPolicy(4)
        for s in [0, 1, 2, 3, 0, 1]:
            lru.touch(s)
        assert lru.victim() == 2
        assert lru.recency_ranking()[-1] == 1

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            LRUPolicy(0)


class TestClockPseudoLRU:
    def test_untouched_slot_is_victim(self):
        clock = ClockPseudoLRU(4)
        clock.touch(0)
        clock.touch(1)
        assert clock.victim() == 2

    def test_all_touched_sweeps_and_clears(self):
        clock = ClockPseudoLRU(3)
        for s in range(3):
            clock.touch(s)
        v = clock.victim()
        assert 0 <= v < 3
        # bits behind the hand were cleared during the sweep
        assert clock.bits.sum() < 3

    def test_approximates_lru_on_skewed_stream(self):
        """The clock's victim should rarely be a recently-hot slot."""
        rng = np.random.default_rng(0)
        clock = ClockPseudoLRU(8)
        for _ in range(500):
            clock.touch(int(rng.integers(0, 4)))  # slots 0-3 hot
            if rng.random() < 0.05:
                assert clock.victim() >= 4 or clock.bits[:4].sum() < 4

    def test_touch_many(self):
        clock = ClockPseudoLRU(8)
        clock.touch_many(np.array([1, 3, 5]))
        assert clock.bits[[1, 3, 5]].all()

    def test_state_bits(self):
        assert ClockPseudoLRU(256).state_bits == 256  # Fig 10's 256-bit map


class TestMultiQueue:
    def test_hot_page_promoted(self):
        mq = MultiQueue(3, 10)
        for _ in range(3):
            mq.touch(42)
        mq.touch(7)
        # 42 sits at the top level; 7 only at level 0 — hottest is 42
        assert mq._level_of[42] == 2
        assert mq._level_of[7] == 0
        assert mq.hottest() == 42

    def test_hottest_is_top_level_newest(self):
        mq = MultiQueue(3, 10)
        for page in (1, 1, 1, 2, 2, 2):
            mq.touch(page)
        assert mq.hottest() == 2

    def test_overflow_demotes(self):
        mq = MultiQueue(2, 2)
        for page in range(5):
            mq.touch(page)
        assert len(mq) <= 4

    def test_forget(self):
        mq = MultiQueue()
        mq.touch(5)
        assert 5 in mq
        mq.forget(5)
        assert 5 not in mq
        mq.forget(5)  # idempotent

    def test_paper_state_bits(self):
        """3 levels x 10 entries x 26-bit ids = 780 bits (Section III-B)."""
        assert MultiQueue(3, 10).state_bits == 780

    def test_empty_hottest(self):
        assert MultiQueue().hottest() is None


class TestSetAssociativeCache:
    def test_hits_after_fill(self):
        c = make_cache(4 * KB, ways=4)
        assert not c.access(0)
        assert c.access(0)
        assert c.contains(0)

    def test_lru_eviction_within_set(self):
        c = make_cache(4 * KB, ways=2)  # 32 sets
        stride = c.n_sets * 64  # same set, different tags
        c.access(0)
        c.access(stride)
        c.access(2 * stride)  # evicts tag of addr 0
        assert not c.contains(0)
        assert c.contains(stride)

    def test_miss_rate_counter(self):
        c = make_cache(4 * KB, ways=4)
        c.access_many(np.array([0, 0, 64, 64]))
        assert c.miss_rate == 0.5
        c.reset_counters()
        assert c.miss_rate == 0.0

    def test_flush(self):
        c = make_cache(4 * KB, ways=4)
        c.access(0)
        c.flush()
        assert not c.contains(0)


class TestStackDistance:
    def test_simple_sequence(self):
        # lines: A B A -> distances: cold, cold, 1
        d = stack_distances(np.array([0, 1, 0]))
        assert d[0] == COLD and d[1] == COLD and d[2] == 1

    def test_immediate_reuse_distance_zero(self):
        d = stack_distances(np.array([5, 5]))
        assert d[1] == 0

    def test_classic_example(self):
        # A B C B A: dist(A@4) = 2 (B, C distinct in between)
        d = stack_distances(np.array([1, 2, 3, 2, 1]))
        assert d[3] == 1
        assert d[4] == 2

    def test_matches_fully_associative_cache(self):
        rng = np.random.default_rng(1)
        addr = (rng.zipf(1.3, 4000) % 500) * 64
        profile = StackDistanceProfile(addr)
        for capacity in (1 * KB, 8 * KB, 16 * KB):
            cache = make_cache(capacity, ways=capacity // 64)
            hits = cache.access_many(addr)
            assert profile.miss_rate(capacity) == pytest.approx(1 - hits.mean())

    def test_miss_rates_batch_matches_single(self):
        rng = np.random.default_rng(2)
        addr = rng.integers(0, 1000, 2000) * 64
        p = StackDistanceProfile(addr)
        caps = [1 * KB, 4 * KB, 64 * KB]
        assert p.miss_rates(caps) == [p.miss_rate(c) for c in caps]

    def test_miss_rate_monotone_in_capacity(self):
        rng = np.random.default_rng(3)
        addr = rng.integers(0, 5000, 3000) * 64
        p = StackDistanceProfile(addr)
        rates = p.miss_rates([1 * KB, 16 * KB, 256 * KB, 4 * MB])
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_inclusion_property(self, lines):
        """A bigger LRU cache never misses where a smaller one hits."""
        p = StackDistanceProfile(np.array(lines) * 64)
        small = p.miss_mask(4 * 64)
        big = p.miss_mask(16 * 64)
        assert not (big & ~small).any()

    def test_empty(self):
        p = StackDistanceProfile(np.array([], dtype=np.int64))
        assert p.miss_rate(1 * KB) == 0.0
        assert p.miss_rates([1 * KB]) == [0.0]


class TestHierarchy:
    def test_level_hits_sum_to_one_minus_memory(self):
        rng = np.random.default_rng(4)
        addr = (rng.zipf(1.2, 5000) % 100000) * 64
        h = CacheHierarchy()
        profile = StackDistanceProfile(addr)
        stats = h.analyze(profile)
        total = stats.l1_hit + stats.l2_hit + stats.l3_hit + stats.memory_fraction
        assert total == pytest.approx(1.0)

    def test_memory_trace_filters(self):
        rng = np.random.default_rng(5)
        from repro.trace.record import make_chunk

        addr = rng.integers(0, 10_000_000, 4000) // 64 * 64
        chunk = make_chunk(addr)
        h = CacheHierarchy()
        filtered = h.memory_trace(chunk)
        profile = StackDistanceProfile(chunk.addr)
        assert len(filtered) == profile.miss_count(8 * MB)

    def test_amat_grows_with_memory_latency(self):
        rng = np.random.default_rng(6)
        profile = StackDistanceProfile(rng.integers(0, 1_000_000, 3000) * 64)
        h = CacheHierarchy()
        assert h.amat_cycles(profile, 200) > h.amat_cycles(profile, 70)


class TestDramCache:
    def test_paper_latencies(self):
        """Table II: L4 hit 140 cycles (2x on-package), miss adds 70."""
        l4 = DramCacheModel(1 * GB, onpkg_access_cycles=70)
        assert l4.hit_cycles == 140
        assert l4.miss_penalty_cycles == 70

    def test_effective_capacity_is_15_16ths(self):
        l4 = DramCacheModel(1 * GB)
        assert l4.effective_capacity_bytes == 1 * GB * 15 // 16

    def test_average_latency_bounds(self):
        rng = np.random.default_rng(7)
        profile = StackDistanceProfile(rng.integers(0, 100_000, 2000) * 64)
        l4 = DramCacheModel(64 * MB, onpkg_access_cycles=70)
        avg = l4.average_latency(profile, memory_latency=200)
        assert l4.hit_cycles <= avg <= l4.miss_penalty_cycles + 200

    def test_functional_cache_is_15_way(self):
        l4 = DramCacheModel(1 * MB, onpkg_access_cycles=70)
        cache = l4.functional_cache()
        assert cache.ways == 15

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            DramCacheModel(0)
