"""Replay every swap case against a shadow data memory.

The paper's central correctness claim (Section III-A): thanks to the
data duplication and the P bit, **at every instant during a swap every
macro page resolves to a machine location that actually holds its
data**. We model data explicitly — each machine location remembers whose
bytes it holds — execute the plan step by step, and assert the claim
after every step, for all four Fig 8 cases plus the ghost case, under
N-1 semantics; and before/after for the stalling N design.
"""

from __future__ import annotations

import pytest

from repro.address import AddressMap
from repro.errors import MigrationError
from repro.migration.algorithms import (
    CopyStep,
    SwapCase,
    TableUpdate,
    build_basic_swap_steps,
    build_swap_steps,
    classify_case,
)
from repro.migration.table import EMPTY, TranslationTable
from repro.units import KB, MB

N_SLOTS = 4


def make_table(reserve=True) -> TranslationTable:
    amap = AddressMap(
        total_bytes=N_SLOTS * 4 * MB,
        onpkg_bytes=N_SLOTS * MB,
        macro_page_bytes=1 * MB,
        subblock_bytes=256 * KB,
    )
    return TranslationTable(amap, reserve_empty_slot=reserve)


class ShadowMemory:
    """Tracks which page's data each machine location holds."""

    def __init__(self, table: TranslationTable):
        self.data: dict[tuple[str, int], int] = {}
        amap = table.amap
        for page in range(amap.n_total_pages):
            if page == amap.ghost_page:
                continue  # Ω is reserved by the hardware driver (Section III-A)
            on, machine = table.resolve(page)
            loc = ("slot", machine) if on else ("mach", machine)
            self.data[loc] = page

    def copy(self, step: CopyStep) -> None:
        assert step.src is not None and step.dst is not None, step.label
        self.data[step.dst] = self.data[step.src]

    def holds(self, loc: tuple[str, int], page: int) -> bool:
        return self.data.get(loc) == page


def assert_all_resolvable(table: TranslationTable, shadow: ShadowMemory, context: str):
    for page in range(table.amap.n_total_pages):
        if page == table.amap.ghost_page:
            continue  # reserved
        if page == table._fill_page:
            # during a fill both copies are partially valid; the old
            # (source) copy must be intact
            assert shadow.holds(("mach", table._fill_source), page) or shadow.holds(
                ("slot", table._filling_slot), page
            ), f"{context}: filling page {page} lost"
            continue
        on, machine = table.resolve(page)
        loc = ("slot", machine) if on else ("mach", machine)
        assert shadow.holds(loc, page), (
            f"{context}: page {page} resolves to {loc} which holds "
            f"{shadow.data.get(loc)}"
        )


def replay(table: TranslationTable, plan, *, check_each_step=True):
    shadow = ShadowMemory(table)
    for i, step in enumerate(plan.steps):
        if isinstance(step, TableUpdate):
            step.apply(table)
        else:
            shadow.copy(step)
            if step.incoming and table.filling:
                table.end_fill()
        if check_each_step and not plan.stall:
            assert_all_resolvable(table, shadow, f"step {i} ({step.label})")
    table.end_fill()
    assert_all_resolvable(table, shadow, "after plan")
    table.check_invariants()
    return shadow


def prepare_case(case: SwapCase):
    """Drive a fresh table into the state each case needs, returning
    (table, mru, lru)."""
    t = make_table()
    off_a, off_b = N_SLOTS + 1, N_SLOTS + 2  # off-package page ids
    if case is SwapCase.A:
        return t, off_a, 0
    if case is SwapCase.B:
        # make slot 1 hold an MF page first (swap off_b in via case A path)
        replay(t, build_swap_steps(t, off_b, 1))
        assert t.category(off_b).value == "MF"
        return t, off_a, off_b
    if case is SwapCase.C:
        # page 1 must be MS: bring off_b into the space, displacing 1
        replay(t, build_swap_steps(t, off_b, 1))
        # now page 1 is GHOST (demoted to Ω); promote something else so 1
        # becomes MS... simpler: build MS directly: swap off_b with slot 1
        # made 1 the ghost. Instead drive: promote ghost 1 back (case G),
        # demoting 0 — then swap off_b? Keep it direct:
        return None  # constructed in the test body instead
    raise AssertionError


class TestCaseA:
    def test_sequence_and_final_state(self):
        t = make_table()
        mru, lru = N_SLOTS + 1, 0
        plan = build_swap_steps(t, mru, lru)
        assert plan.case is SwapCase.A
        replay(t, plan)
        assert t.resolve(mru) == (True, N_SLOTS - 1)   # in the old empty slot
        assert t.category(mru).value == "MF"
        assert t.category(lru).value == "GHOST"        # demoted to Ω
        assert t.empty_slot() == lru


class TestCaseB:
    def test_sequence_and_final_state(self):
        t = make_table()
        first, second = N_SLOTS + 1, N_SLOTS + 2
        replay(t, build_swap_steps(t, first, 1))       # makes `first` MF
        plan = build_swap_steps(t, second, first)      # LRU is now MF
        assert plan.case is SwapCase.B
        replay(t, plan)
        assert t.category(second).value == "MF"
        assert t.category(first).value == "OS"         # went home
        assert t.empty_slot() is not None


class TestCasesCD:
    def _make_ms(self, t: TranslationTable) -> int:
        """Produce an MS page: bring an OS page on-package displacing a
        low page, then promote the ghost back so the low page becomes MS.

        After case A (mru=X, lru=p): pair[e]=X, p is ghost/empty.
        After case G on p (demoting q): p fills slot p... p<N pages pair
        themselves. Simplest MS construction: run case A twice so that
        the second LRU's slot gets reused by a later swap.
        """
        a, b = N_SLOTS + 1, N_SLOTS + 2
        replay(t, build_swap_steps(t, a, 0))   # 0 ghost, slot 0 empty, a in slot 3
        replay(t, build_swap_steps(t, b, 1))   # b -> slot 0 (empty), 1 ghost...
        # after the 2nd swap: pair[0] = b with P cleared => page 0 is MS at
        # machine b
        assert t.category(0).value == "MS"
        return 0

    def test_case_c(self):
        t = make_table()
        ms = self._make_ms(t)
        lru = 2  # still OF
        plan = build_swap_steps(t, ms, lru)
        assert plan.case is SwapCase.C
        replay(t, plan)
        assert t.resolve(ms) == (True, ms)      # MS page went home
        assert t.category(lru).value == "GHOST"

    def test_case_d(self):
        t = make_table()
        ms = self._make_ms(t)
        # an MF LRU that is NOT the MRU's pair partner
        partner = t.page_in_slot(ms)
        mf = next(
            int(p) for p in t.resident_pages() if p >= N_SLOTS and p != partner
        )
        plan = build_swap_steps(t, ms, mf)
        assert plan.case is SwapCase.D
        replay(t, plan)
        assert t.resolve(ms) == (True, ms)
        assert t.category(mf).value == "OS"     # demoted LRU went home

    def test_case_d_lru_is_partner(self):
        """Fig 8 does not enumerate LRU == MRU's pair partner: the promote
        relocates the partner into the empty slot, and the plan then
        demotes it home to keep the one-empty-slot invariant."""
        t = make_table()
        ms = self._make_ms(t)
        partner = t.page_in_slot(ms)
        plan = build_swap_steps(t, ms, partner)
        assert plan.case is SwapCase.D
        replay(t, plan)
        assert t.resolve(ms) == (True, ms)
        assert t.category(partner).value == "OS"   # demoted home
        assert t.empty_slot() is not None          # invariant restored


class TestCaseG:
    def test_ghost_promotion(self):
        t = make_table()
        ghost = N_SLOTS - 1  # initial ghost page
        plan = build_swap_steps(t, ghost, 0)
        assert plan.case is SwapCase.G
        replay(t, plan)
        assert t.resolve(ghost) == (True, ghost)
        assert t.category(0).value == "GHOST"


class TestBasicDesign:
    def test_case_a_exchange(self):
        t = make_table(reserve=False)
        mru, lru = N_SLOTS + 1, 0
        plan = build_basic_swap_steps(t, mru, lru)
        assert plan.stall
        replay(t, plan, check_each_step=False)
        assert t.resolve(mru) == (True, lru)
        assert t.resolve(lru) == (False, mru)

    def test_case_b_restores_then_swaps(self):
        t = make_table(reserve=False)
        a, b = N_SLOTS + 1, N_SLOTS + 2
        replay(t, build_basic_swap_steps(t, a, 0), check_each_step=False)
        plan = build_basic_swap_steps(t, b, a)
        assert plan.case is SwapCase.B
        replay(t, plan, check_each_step=False)
        assert t.category(a).value == "OS"
        assert t.category(b).value == "MF"

    def test_n_design_uses_all_slots(self):
        t = make_table(reserve=False)
        assert len(t.resident_pages()) == N_SLOTS

    def test_stall_plans_move_more_bytes_for_exchanges(self):
        t = make_table(reserve=False)
        plan = build_basic_swap_steps(t, N_SLOTS + 1, 0)
        # a direct exchange moves both pages across the boundary (the
        # on-chip staging copy does not cross it)
        assert plan.cross_boundary_bytes == 2 * t.amap.macro_page_bytes
        assert plan.total_copy_bytes == 3 * t.amap.macro_page_bytes


class TestClassification:
    def test_rejects_onpackage_mru(self):
        t = make_table()
        with pytest.raises(MigrationError):
            classify_case(t, 0, 1)

    def test_rejects_offpackage_lru(self):
        t = make_table()
        with pytest.raises(MigrationError):
            classify_case(t, N_SLOTS + 1, N_SLOTS + 2)


class TestPlanShape:
    def test_case_a_has_three_copies(self):
        t = make_table()
        plan = build_swap_steps(t, N_SLOTS + 1, 0)
        copies = [s for s in plan.steps if isinstance(s, CopyStep)]
        assert len(copies) == 3  # MRU in, ghost out, LRU out
        assert sum(c.incoming for c in copies) == 1

    def test_cross_boundary_accounting(self):
        t = make_table()
        plan = build_swap_steps(t, N_SLOTS + 1, 0)
        assert plan.cross_boundary_bytes == plan.total_copy_bytes
