"""CampaignSupervisor: crash isolation, timeouts, manifest resume.

Worker functions live at module level so they work under any
multiprocessing start method. Timeouts and backoff delays are kept
small; the whole file stays within a few seconds of wall clock.
"""

import json
import os
import signal
import time

import pytest

from repro.campaign import (
    COMPLETED,
    FAILED,
    MANIFEST_VERSION,
    RUNNING,
    CampaignManifest,
    CampaignSupervisor,
    CampaignTask,
    RetryPolicy,
)
from repro.errors import CampaignError
from repro.stats.report import campaign_table

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


# ---------------------------------------------------------------------------
# campaign worker functions (module-level: picklable / fork-safe)
# ---------------------------------------------------------------------------

def double(x):
    return x * 2


def crash_hard():
    os._exit(1)  # simulates SIGKILL/OOM: no exception, no cleanup


def sleep_forever():
    time.sleep(60)


def raise_value_error():
    raise ValueError("deterministic bug, retrying cannot help")


def seed_sensitive(seed=0):
    """Crashes on its base seed; any derived retry seed succeeds."""
    if seed == 13:
        os._exit(1)
    return seed


def stop_self_then_sleep():
    """Goes silent (SIGSTOP) while staying alive — only heartbeat
    monitoring can tell this apart from slow progress."""
    os.kill(os.getpid(), signal.SIGSTOP)
    time.sleep(60)


def record_and_double(x, log_path=None):
    with open(log_path, "a") as fh:
        fh.write(f"{x}\n")
    return x * 2


# ---------------------------------------------------------------------------


class TestInlineSerial:
    def test_results_in_submission_order(self):
        report = CampaignSupervisor().run(
            [CampaignTask(f"t{i}", double, (i,)) for i in range(5)]
        )
        assert [o.result for o in report.outcomes] == [0, 2, 4, 6, 8]
        assert report.ok
        assert all(o.attempts == 1 for o in report.outcomes)

    def test_failure_is_recorded_not_raised(self):
        report = CampaignSupervisor(retry=FAST_RETRY).run([
            CampaignTask("good", double, (3,)),
            CampaignTask("bad", raise_value_error),
            CampaignTask("also-good", double, (4,)),
        ])
        assert not report.ok
        assert [o.task_id for o in report.failed] == ["bad"]
        assert "ValueError" in report.by_id["bad"].error
        # siblings completed despite the failure
        assert report.result("good") == 6
        assert report.result("also-good") == 8

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSupervisor().run(
                [CampaignTask("x", double, (1,)), CampaignTask("x", double, (2,))]
            )

    def test_manifest_written_inline(self, tmp_path):
        path = tmp_path / "manifest.json"
        CampaignSupervisor(manifest_path=path, retry=FAST_RETRY).run([
            CampaignTask("ok", double, (1,)),
            CampaignTask("bad", raise_value_error),
        ])
        data = json.loads(path.read_text())
        assert data["version"] == MANIFEST_VERSION
        assert data["tasks"]["ok"]["status"] == COMPLETED
        assert data["tasks"]["ok"]["result"] == 2
        assert data["tasks"]["bad"]["status"] == FAILED
        assert "ValueError" in data["tasks"]["bad"]["error"]


class TestCrashIsolation:
    def test_acceptance_campaign(self, tmp_path):
        """ISSUE acceptance: >= 8 tasks, 2 crash, 1 hangs past its
        timeout; the rest complete; exactly the exhausted tasks are
        failed in the manifest; a re-invocation resumes, skipping
        completed tasks."""
        path = tmp_path / "manifest.json"
        log = tmp_path / "ran.log"
        tasks = [
            CampaignTask(f"ok{i}", record_and_double, (i,),
                         {"log_path": str(log)})
            for i in range(6)
        ] + [
            CampaignTask("crash-a", crash_hard),
            CampaignTask("crash-b", crash_hard),
            CampaignTask("hang", sleep_forever),
        ]
        supervisor = CampaignSupervisor(
            jobs=3, task_timeout=1.0, retry=FAST_RETRY, manifest_path=path,
        )
        report = supervisor.run(tasks)

        assert {o.task_id for o in report.completed} == {f"ok{i}" for i in range(6)}
        assert {o.task_id for o in report.failed} == {"crash-a", "crash-b", "hang"}
        # retried per policy before giving up
        assert all(o.attempts == FAST_RETRY.max_attempts for o in report.failed)
        assert "TaskCrashError" in report.by_id["crash-a"].error
        assert "TaskTimeoutError" in report.by_id["hang"].error
        for i in range(6):
            assert report.result(f"ok{i}") == i * 2

        data = json.loads(path.read_text())
        failed = {t for t, r in data["tasks"].items() if r["status"] == FAILED}
        assert failed == {"crash-a", "crash-b", "hang"}

        # re-invocation: completed tasks are skipped (not recomputed),
        # failed tasks are attempted again
        runs_before = log.read_text().count("\n")
        report2 = supervisor.run(tasks)
        assert {o.task_id for o in report2.skipped} == {f"ok{i}" for i in range(6)}
        assert {o.task_id for o in report2.failed} == {"crash-a", "crash-b", "hang"}
        assert log.read_text().count("\n") == runs_before
        # skipped tasks still expose their manifest-stored results
        assert report2.result("ok3") == 6

    def test_worker_exception_reaches_report(self):
        report = CampaignSupervisor(jobs=2, retry=FAST_RETRY,
                                    task_timeout=5.0).run([
            CampaignTask("bad", raise_value_error),
            CampaignTask("good", double, (5,)),
        ])
        assert "ValueError" in report.by_id["bad"].error
        # deterministic bugs are not retried
        assert report.by_id["bad"].attempts == 1
        assert report.result("good") == 10

    def test_retry_gets_derived_seed(self):
        """A task that dies on its base seed succeeds on the retry's
        distinct-but-deterministic derived seed."""
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)
        supervisor = CampaignSupervisor(jobs=2, task_timeout=5.0, retry=policy)
        report = supervisor.run([CampaignTask("flaky", seed_sensitive, seed=13)])
        outcome = report.by_id["flaky"]
        assert outcome.status == COMPLETED
        assert outcome.attempts == 2
        assert outcome.result == policy.attempt_seed(13, 2)

    def test_heartbeat_detects_silent_worker(self):
        """A SIGSTOPped worker is alive but silent: heartbeat
        monitoring kills it without waiting for a wall-clock budget."""
        supervisor = CampaignSupervisor(
            jobs=2,
            retry=RetryPolicy(max_attempts=1),
            heartbeat_interval=0.05,
            heartbeat_timeout=0.5,
        )
        t0 = time.monotonic()
        report = supervisor.run([
            CampaignTask("silent", stop_self_then_sleep),
            CampaignTask("chatty", double, (2,)),
        ])
        assert time.monotonic() - t0 < 30.0
        assert "heartbeat" in report.by_id["silent"].error
        assert report.result("chatty") == 4


class TestManifestResume:
    def test_interrupted_tasks_are_requeued(self, tmp_path):
        """A task left 'running' by a dead supervisor is re-run."""
        path = tmp_path / "manifest.json"
        manifest = CampaignManifest.open(path)
        manifest.mark_completed("done", 1.0, result=99)
        manifest.mark_running("inflight")
        assert manifest.interrupted() == ["inflight"]

        report = CampaignSupervisor(manifest_path=path).run([
            CampaignTask("done", double, (1,)),
            CampaignTask("inflight", double, (21,)),
        ])
        assert report.by_id["done"].status == "skipped"
        assert report.result("done") == 99          # manifest result, not 2
        assert report.by_id["inflight"].status == COMPLETED
        assert report.result("inflight") == 42

    def test_needs_run_filters_only_completed(self, tmp_path):
        manifest = CampaignManifest.open(tmp_path / "m.json")
        manifest.mark_completed("a", 0.1)
        manifest.mark_failed("b", "boom", 0.1)
        manifest.mark_running("c")
        assert manifest.needs_run(["a", "b", "c", "d"]) == ["b", "c", "d"]

    def test_atomic_save_roundtrip(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = CampaignManifest.open(path)
        manifest.mark_completed("t", 2.5, result={"rows": [1, 2]})
        reloaded = CampaignManifest.open(path)
        record = reloaded.tasks["t"]
        assert record.status == COMPLETED
        assert record.result == {"rows": [1, 2]}
        assert record.duration_s == 2.5
        assert not (tmp_path / "m.json.tmp").exists()

    def test_unserialisable_results_degrade_to_none(self, tmp_path):
        manifest = CampaignManifest.open(tmp_path / "m.json")
        manifest.mark_completed("t", 1.0, result=object())
        record = CampaignManifest.open(tmp_path / "m.json").tasks["t"]
        assert record.status == COMPLETED
        assert record.result is None and not record.has_result

    def test_unknown_version_refused(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(
            {"magic": "repro-campaign-manifest", "version": 99, "tasks": {}}
        ))
        with pytest.raises(CampaignError, match="version"):
            CampaignManifest.open(path)

    def test_corrupt_manifest_refused(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{ not json")
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignManifest.open(path)

    def test_foreign_json_refused(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(CampaignError, match="not a campaign manifest"):
            CampaignManifest.open(path)

    def test_bad_status_refused(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({
            "magic": "repro-campaign-manifest", "version": MANIFEST_VERSION,
            "tasks": {"t": {"task_id": "t", "status": "exploded"}},
        }))
        with pytest.raises(CampaignError, match="unknown status"):
            CampaignManifest.open(path)


class TestValidationAndReport:
    @pytest.mark.parametrize("kwargs", [
        {"jobs": 0},
        {"task_timeout": 0.0},
        {"heartbeat_timeout": -1.0},
    ])
    def test_bad_supervisor_parameters(self, kwargs):
        with pytest.raises(CampaignError):
            CampaignSupervisor(**kwargs)

    def test_campaign_table_names_partial_results(self):
        report = CampaignSupervisor(retry=FAST_RETRY).run([
            CampaignTask("good", double, (1,)),
            CampaignTask("bad", raise_value_error),
        ])
        rendered = campaign_table(report).render()
        assert "good" in rendered and "bad" in rendered
        assert "1 completed, 1 failed" in rendered
        assert "PARTIAL" in rendered
        assert rendered == report.table().render()

    def test_all_good_report_is_not_partial(self):
        report = CampaignSupervisor().run([CampaignTask("t", double, (1,))])
        assert "PARTIAL" not in report.table().render()


class TestIntervalConfiguration:
    """Heartbeat/poll intervals: constructor args and REPRO_HEARTBEAT_MS."""

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_MS", raising=False)
        s = CampaignSupervisor()
        assert s.heartbeat_interval == 0.5
        assert s.poll_interval == 0.05

    @pytest.mark.parametrize("kwargs", [
        {"poll_interval": 0},
        {"poll_interval": -0.1},
        {"heartbeat_interval": -1.0},
    ])
    def test_bad_intervals_rejected(self, kwargs):
        with pytest.raises(CampaignError):
            CampaignSupervisor(**kwargs)

    def test_zero_heartbeat_disables(self):
        assert CampaignSupervisor(heartbeat_interval=0).heartbeat_interval == 0

    def test_custom_poll_interval_stored(self):
        assert CampaignSupervisor(poll_interval=0.01).poll_interval == 0.01

    def test_env_heartbeat_is_milliseconds(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "250")
        assert CampaignSupervisor().heartbeat_interval == 0.25

    def test_env_heartbeat_blank_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "  ")
        assert CampaignSupervisor().heartbeat_interval == 0.5

    def test_env_heartbeat_must_be_numeric(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "fast")
        with pytest.raises(CampaignError):
            CampaignSupervisor()

    def test_env_heartbeat_must_be_nonnegative(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "-50")
        with pytest.raises(CampaignError):
            CampaignSupervisor()

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_MS", "250")
        assert CampaignSupervisor(heartbeat_interval=1.5).heartbeat_interval == 1.5

    def test_worker_run_with_custom_intervals(self, tmp_path):
        """The configured intervals drive a real worker round-trip."""
        sup = CampaignSupervisor(
            jobs=2, heartbeat_interval=0.05, poll_interval=0.01,
            retry=FAST_RETRY,
        )
        report = sup.run([CampaignTask("t", double, (21,))])
        assert report.ok and report.by_id["t"].result == 42
