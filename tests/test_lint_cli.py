"""The ``repro-lint`` command line (lint / protocol / faults / rules)."""

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.lint import RULES

BAD_SOURCE = "import time\n\n\ndef stamp():\n    return time.time()\n"
GOOD_SOURCE = "import time\n\n\ndef tick():\n    return time.monotonic()\n"


@pytest.fixture
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "simulator"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_SOURCE)
    (pkg / "good.py").write_text(GOOD_SOURCE)
    return tmp_path


def run(args):
    return main([str(a) for a in args])


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert run(["lint", tree / "src" / "repro" / "simulator" / "good.py",
                    "--baseline", tree / "b.json"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tree, capsys):
        code = run(["lint", tree, "--root", tree, "--baseline", tree / "b.json"])
        assert code == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out and "bad.py:5" in out

    def test_no_fail_on_new(self, tree):
        assert run(["lint", tree, "--baseline", tree / "b.json",
                    "--no-fail-on-new"]) == 0

    def test_json_output(self, tree, capsys):
        run(["lint", tree, "--root", tree, "--baseline", tree / "b.json",
             "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["tool"] == "repro-lint"
        assert data["summary"]["new"] == 1

    def test_write_baseline_then_clean(self, tree, capsys):
        baseline = tree / "b.json"
        assert run(["lint", tree, "--root", tree, "--baseline", baseline,
                    "--write-baseline"]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert run(["lint", tree, "--root", tree, "--baseline", baseline]) == 0

    def test_select_skips_other_rules(self, tree):
        assert run(["lint", tree, "--baseline", tree / "b.json",
                    "--select", "unseeded-rng"]) == 0

    def test_unknown_rule_is_usage_error(self, tree, capsys):
        assert run(["lint", tree, "--select", "bogus",
                    "--baseline", tree / "b.json"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path):
        assert run(["lint", tmp_path / "absent",
                    "--baseline", tmp_path / "b.json"]) == 2


CONFUSED_SOURCE = (
    "def latency(sched, arrival):\n"
    "    arrival_u = sched.useful(arrival)\n"
    "    start = sched.wall(arrival_u, begin=True)\n"
    "    return start < arrival_u\n"
)


class TestDomainsCommand:
    @pytest.fixture
    def confused_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "simulator"
        pkg.mkdir(parents=True)
        (pkg / "confused.py").write_text(CONFUSED_SOURCE)
        return tmp_path

    def test_confusion_exits_nonzero_with_trace(self, confused_tree, capsys):
        code = run(["domains", confused_tree, "--root", confused_tree,
                    "--baseline", confused_tree / "b.json"])
        assert code == 1
        out = capsys.readouterr().out
        assert "domain-confusion" in out
        assert "step 0: line" in out  # the dataflow trace is printed

    def test_json_carries_trace(self, confused_tree, capsys):
        run(["domains", confused_tree, "--root", confused_tree,
             "--baseline", confused_tree / "b.json", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["rules"] == ["domain-confusion"]
        (finding,) = data["findings"]
        assert finding["trace"]
        assert finding["trace"][0].startswith("step 0: line ")

    def test_only_the_domain_rule_runs(self, tree, capsys):
        # the wall-clock violation in the shared fixture is invisible
        assert run(["domains", tree, "--root", tree,
                    "--baseline", tree / "b.json"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_write_baseline_then_clean(self, confused_tree, capsys):
        baseline = confused_tree / "b.json"
        assert run(["domains", confused_tree, "--root", confused_tree,
                    "--baseline", baseline, "--write-baseline"]) == 0
        capsys.readouterr()
        assert run(["domains", confused_tree, "--root", confused_tree,
                    "--baseline", baseline]) == 0

    def test_repo_tree_is_clean(self, capsys):
        assert run(["domains", "src", "--root", "."]) == 0


class TestUsageErrors:
    def test_unknown_subcommand_exits_two(self, capsys):
        assert run(["domans", "src"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_subcommand_exits_two(self, capsys):
        assert run([]) == 2
        capsys.readouterr()

    def test_unknown_flag_exits_two(self, capsys):
        assert run(["lint", "--bogus-flag"]) == 2
        capsys.readouterr()

    def test_help_exits_zero(self, capsys):
        assert run(["--help"]) == 0
        assert "repro-lint" in capsys.readouterr().out


class TestProtocolCommand:
    def test_variant_n_ok(self, capsys):
        assert run(["protocol", "--variant", "n"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert run(["protocol", "--variant", "n", "--json"]) == 0
        (report,) = json.loads(capsys.readouterr().out)
        assert report["variant"] == "N"
        assert report["ok"] is True and report["violations"] == []


class TestFaultsCommand:
    def test_table_lists_every_fault(self, capsys):
        assert run(["faults"]) == 0
        out = capsys.readouterr().out
        for fault in ("stuck-p-bit", "stuck-f-bit", "bitmap-corruption",
                      "abort-swap", "dram-transient"):
            assert fault in out

    def test_json_output(self, capsys):
        assert run(["faults", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(
            set(row) == {"fault", "scenario", "invariants", "note",
                         "expect_clean"}
            for row in data
        )

    def test_seu_rows_marked_expected(self, capsys):
        assert run(["faults"]) == 0
        out = capsys.readouterr().out
        assert "(expected: audit repairs)" in out

    def test_fail_on_violation_passes_when_recovery_clean(self):
        # every expect_clean scenario (all the abort landings) must
        # model-recover with zero violated invariants — the CI gate
        assert run(["faults", "--fail-on-violation"]) == 0

    def test_fail_on_violation_trips_on_dirty_clean_scenario(self, capsys,
                                                             monkeypatch):
        from repro.analysis import cli as cli_mod
        from repro.analysis.protocol import FaultImpact

        def fake_analysis():
            return [
                FaultImpact(fault="abort-swap", scenario="s",
                            invariants=("valid-copy",), note="n"),
            ]

        monkeypatch.setattr(
            cli_mod, "fault_invariant_analysis", fake_analysis
        )
        assert run(["faults", "--fail-on-violation"]) == 1
        assert "expected clean" in capsys.readouterr().out
        # without the flag the table still prints but exits 0
        assert run(["faults"]) == 0


class TestRulesCommand:
    def test_catalog_lists_every_rule(self, capsys):
        assert run(["rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out
