"""RetryPolicy: backoff shape, jitter determinism, classification, seeds.

No test here sleeps — time is injected through
:class:`repro.campaign.FakeClock`.
"""

import pytest

from repro.campaign import FakeClock, RetryPolicy
from repro.errors import (
    CampaignError,
    FaultInjectionError,
    TaskCrashError,
    TaskTimeoutError,
    WatchdogError,
)


class TestBackoffSequence:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, max_delay=30.0,
                             jitter_fraction=0.0)
        assert [policy.backoff(k) for k in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=5.0,
                             jitter_fraction=0.0)
        assert policy.backoff(1) == 1.0
        assert policy.backoff(2) == 5.0
        assert policy.backoff(9) == 5.0

    def test_call_sleeps_the_backoff_sequence(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, jitter_fraction=0.0)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise FaultInjectionError("transient")
            return "done"

        result, attempts = policy.call(flaky, clock=clock)
        assert result == "done"
        assert attempts == 4
        assert clock.sleeps == [0.5, 1.0, 2.0]
        assert clock.now == pytest.approx(3.5)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter_fraction=0.25)
        for attempt in range(1, 50):
            delay = policy.backoff(attempt, task_key=f"t{attempt}")
            assert 0.75 <= delay <= 1.25

    def test_first_try_has_no_delay(self):
        assert RetryPolicy().backoff(0) == 0.0


class TestJitterDeterminism:
    def test_same_seed_same_delays(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        for attempt in (1, 2, 3):
            assert a.backoff(attempt, "task") == b.backoff(attempt, "task")

    def test_different_seed_different_delays(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=2)
        assert any(
            a.backoff(k, "task") != b.backoff(k, "task") for k in (1, 2, 3)
        )

    def test_different_tasks_desynchronise(self):
        policy = RetryPolicy(seed=0)
        delays = {policy.backoff(1, f"task-{i}") for i in range(8)}
        assert len(delays) > 1  # not a lockstep thundering herd


class TestClassification:
    @pytest.mark.parametrize("exc", [
        FaultInjectionError("x"), WatchdogError("x"),
        TaskCrashError("x"), TaskTimeoutError("x"),
    ])
    def test_default_retryable_kinds(self, exc):
        assert RetryPolicy().is_retryable(exc)

    @pytest.mark.parametrize("exc", [ValueError("x"), KeyError("x"),
                                     CampaignError("x")])
    def test_default_non_retryable_kinds(self, exc):
        assert not RetryPolicy().is_retryable(exc)

    def test_non_retryable_propagates_immediately(self):
        clock = FakeClock()
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("bug, not weather")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(bad, clock=clock)
        assert len(calls) == 1
        assert clock.sleeps == []

    def test_exhausted_retryable_raises_last_error(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter_fraction=0.0)

        def always():
            raise WatchdogError("still broken")

        with pytest.raises(WatchdogError):
            policy.call(always, clock=clock)
        assert len(clock.sleeps) == 2  # retries, not attempts

    def test_custom_classification(self):
        policy = RetryPolicy(retryable=(KeyError,))
        assert policy.is_retryable(KeyError("k"))
        assert not policy.is_retryable(FaultInjectionError("x"))

    def test_on_retry_callback_sees_each_failure(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, jitter_fraction=0.0)
        seen = []
        def flaky():
            if len(seen) < 2:
                raise FaultInjectionError("again")
            return 1
        policy.call(flaky, clock=clock,
                    on_retry=lambda a, e, d: seen.append((a, type(e), d)))
        assert [s[0] for s in seen] == [1, 2]
        assert all(s[1] is FaultInjectionError for s in seen)
        assert [s[2] for s in seen] == clock.sleeps


class TestAttemptSeeds:
    def test_first_attempt_keeps_base_seed(self):
        assert RetryPolicy().attempt_seed(42, 1) == 42

    def test_retries_get_distinct_seeds(self):
        policy = RetryPolicy()
        seeds = [policy.attempt_seed(42, k) for k in (1, 2, 3, 4)]
        assert len(set(seeds)) == 4

    def test_derived_seeds_are_deterministic(self):
        # two fresh policy objects (e.g. in two processes) agree
        assert (RetryPolicy(seed=5).attempt_seed(42, 3)
                == RetryPolicy(seed=5).attempt_seed(42, 3))

    def test_derived_seeds_fit_32_bits(self):
        policy = RetryPolicy()
        for attempt in (2, 3, 10):
            assert 0 <= policy.attempt_seed(2**31, attempt) < 2**32

    def test_policy_seed_shifts_derived_seeds(self):
        assert (RetryPolicy(seed=1).attempt_seed(42, 2)
                != RetryPolicy(seed=2).attempt_seed(42, 2))


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter_fraction": 1.0},
        {"jitter_fraction": -0.1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(CampaignError):
            RetryPolicy(**kwargs)


class TestFakeClock:
    def test_sleep_advances_without_blocking(self):
        clock = FakeClock(start=10.0)
        clock.sleep(2.5)
        assert clock.monotonic() == 12.5
        assert clock.sleeps == [2.5]
