"""ShardedSimulator: partitioning, merge semantics and equivalence.

Pins the contract from ``repro.campaign.sharded``:

* ``n_shards=1`` is bit-identical to a plain simulator run;
* ``shard_records`` partitions without loss and re-addresses
  page-interleaved traffic into each shard's local space;
* geometry/feature constraints are rejected up front;
* a 4-shard run tracks the unsharded run statistically (seeded
  tolerance) and is deterministic for a fixed seed;
* ``merge_results`` implements the documented semantics exactly.
"""

import dataclasses

import numpy as np
import pytest

from repro.campaign.sharded import (
    ShardedSimulator,
    merge_results,
    shard_config,
    shard_records,
    validate_sharding,
)
from repro.config import MigrationConfig, RASConfig, SystemConfig
from repro.core.hetero_memory import HeterogeneousMainMemory
from repro.core.simulator import SimulationResult
from repro.errors import CampaignError, SimulationError
from repro.resilience.degradation import DegradationEvent
from repro.trace.record import make_chunk
from repro.trace.stream import iter_chunks
from repro.units import KB, MB

SUP = dict(poll_interval=0.005)


def _cfg():
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm="live", macro_page_bytes=64 * KB, swap_interval=1_000
        ),
    )


def _trace(n=40_000, seed=0, reserve_pages=8):
    # folded away from the top macro pages: they back the per-shard
    # ghost pages (see shard_records)
    rng = np.random.default_rng(seed)
    span = (64 * MB - reserve_pages * 64 * KB) // 4096
    hot = rng.integers(0, span)
    blocks = np.where(
        rng.random(n) < 0.8,
        (hot + rng.integers(0, 512, n)) % span,
        rng.integers(0, span, n),
    )
    return make_chunk(blocks * 4096, time=np.cumsum(rng.integers(1, 80, n)))


def _stream_factory():
    return iter_chunks(_trace(20_000), 4_000)


class TestPartitioning:
    def test_shard_config_scales_capacities(self):
        cfg = shard_config(_cfg(), 4)
        assert cfg.total_bytes == 16 * MB
        assert cfg.onpkg_bytes == 2 * MB
        amap_full = _cfg().address_map()
        amap_shard = cfg.address_map()
        assert amap_shard.n_total_pages * 4 == amap_full.n_total_pages
        assert amap_shard.n_onpkg_pages * 4 == amap_full.n_onpkg_pages

    def test_shard_records_partitions_without_loss(self):
        cfg = _cfg()
        trace = _trace()
        shards = [shard_records(trace.records, cfg, 4, i) for i in range(4)]
        assert sum(s.shape[0] for s in shards) == len(trace)
        amap = cfg.address_map()
        shift = amap.offset_bits
        global_pages = np.sort(trace.records["addr"] >> shift)
        # reconstruct: local page p' of shard i <- global page p'*4 + i
        rebuilt = np.sort(np.concatenate([
            ((s["addr"] >> shift) * 4 + i) for i, s in enumerate(shards)
        ]))
        assert np.array_equal(rebuilt, global_pages)
        # offsets and times survive re-addressing
        for i, s in enumerate(shards):
            own = (trace.records["addr"] >> shift) % 4 == i
            assert np.array_equal(s["time"], trace.records["time"][own])
            assert np.array_equal(
                s["addr"] & (amap.macro_page_bytes - 1),
                trace.records["addr"][own] & (amap.macro_page_bytes - 1),
            )

    def test_one_shard_is_identity(self):
        trace = _trace()
        out = shard_records(trace.records, _cfg(), 1, 0)
        assert out is trace.records

    def test_top_pages_rejected(self):
        cfg = _cfg()
        amap = cfg.address_map()
        top = (amap.n_total_pages - 2) * amap.macro_page_bytes
        trace = make_chunk([top], time=[1])
        with pytest.raises(SimulationError):
            shard_records(trace.records, cfg, 4, 0)

    def test_validate_rejects_bad_geometry(self):
        with pytest.raises(CampaignError):
            validate_sharding(_cfg(), 3)  # 128 onpkg pages % 3 != 0
        with pytest.raises(CampaignError):
            validate_sharding(_cfg(), 0)

    def test_validate_rejects_ras(self):
        cfg = dataclasses.replace(_cfg(), ras=RASConfig(enabled=True))
        with pytest.raises(CampaignError):
            ShardedSimulator(cfg, 2)


class TestMergeResults:
    def _result(self, **kw):
        r = SimulationResult()
        for k, v in kw.items():
            setattr(r, k, v)
        return r

    def test_counters_sum_rates_weighted(self):
        a = self._result(n_accesses=100, total_latency=1_000,
                         onpkg_accesses=80, offpkg_accesses=20,
                         onpkg_row_hit_rate=0.9, offpkg_row_hit_rate=0.5,
                         swaps_triggered=3, duration_cycles=500)
        b = self._result(n_accesses=300, total_latency=9_000,
                         onpkg_accesses=120, offpkg_accesses=180,
                         onpkg_row_hit_rate=0.6, offpkg_row_hit_rate=0.7,
                         swaps_triggered=1, duration_cycles=400)
        m = merge_results([a, b])
        assert m.n_accesses == 400
        assert m.total_latency == 10_000
        assert m.swaps_triggered == 4
        assert m.duration_cycles == 500  # max, spans overlap
        assert m.onpkg_row_hit_rate == pytest.approx(
            (0.9 * 80 + 0.6 * 120) / 200
        )
        assert m.offpkg_row_hit_rate == pytest.approx(
            (0.5 * 20 + 0.7 * 180) / 200
        )

    def test_epoch_series_mean_of_shard_means(self):
        a = self._result(epoch_latency=[10.0, 20.0, 30.0])
        b = self._result(epoch_latency=[30.0, 40.0])
        m = merge_results([a, b])
        assert m.epoch_latency == [20.0, 30.0, 30.0]

    def test_events_tagged_and_resorted(self):
        ev = lambda t, e, d: DegradationEvent(time=t, epoch=e, kind="k",
                                              detail=d)
        a = self._result(degradation_events=[ev(50, 5, "x")])
        b = self._result(degradation_events=[ev(10, 1, "y")],
                         quarantined=True)
        m = merge_results([a, b])
        assert [e.detail for e in m.degradation_events] == \
            ["[shard 1] y", "[shard 0] x"]
        assert m.quarantined

    def test_single_result_passthrough_and_empty_rejected(self):
        a = self._result(n_accesses=7)
        assert merge_results([a]) is a
        with pytest.raises(CampaignError):
            merge_results([])


class TestShardedRuns:
    def test_one_shard_bit_identical_to_plain(self):
        trace = _trace()
        plain = HeterogeneousMainMemory(_cfg()).run(trace)
        sharded = ShardedSimulator(_cfg(), 1, **SUP).run(trace)
        assert sharded.total_latency == plain.total_latency
        assert sharded.epoch_latency == plain.epoch_latency
        assert sharded.swaps_triggered == plain.swaps_triggered
        assert sharded.n_accesses == plain.n_accesses

    def test_four_shards_track_unsharded(self):
        trace = _trace()
        plain = HeterogeneousMainMemory(_cfg()).run(trace)
        merged = ShardedSimulator(_cfg(), 4, **SUP).run(trace)
        assert merged.n_accesses == plain.n_accesses
        # seeded tolerance contract: averages track, not bitwise
        assert merged.average_latency == pytest.approx(
            plain.average_latency, rel=0.5
        )
        # shards hit epoch boundaries every swap_interval *local*
        # accesses (4x finer in wall-clock time), so they promote hot
        # pages earlier and settle at a higher on-package fraction
        assert merged.onpkg_fraction == pytest.approx(
            plain.onpkg_fraction, abs=0.25
        )
        assert merged.onpkg_fraction >= plain.onpkg_fraction - 0.02
        assert merged.swaps_triggered > 0
        assert merged.fused_epochs > 0 and merged.stepwise_epochs == 0

    def test_four_shards_deterministic(self):
        trace = _trace()
        a = ShardedSimulator(_cfg(), 4, **SUP).run(trace)
        b = ShardedSimulator(_cfg(), 4, **SUP).run(trace)
        assert a.total_latency == b.total_latency
        assert a.epoch_latency == b.epoch_latency
        assert a.swaps_triggered == b.swaps_triggered

    def test_run_stream(self):
        merged = ShardedSimulator(_cfg(), 2, **SUP).run_stream(_stream_factory)
        assert merged.n_accesses == 20_000
        again = ShardedSimulator(_cfg(), 2, **SUP).run_stream(_stream_factory)
        assert merged.total_latency == again.total_latency
