"""Unit tests for repro.units."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.units import (
    GB,
    KB,
    MB,
    format_size,
    is_power_of_two,
    log2_exact,
    parse_size,
)


class TestParseSize:
    def test_plain_integer_passthrough(self):
        assert parse_size(4096) == 4096

    def test_bytes_without_suffix(self):
        assert parse_size("512") == 512

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4KB", 4 * KB),
            ("4K", 4 * KB),
            ("512MB", 512 * MB),
            ("512M", 512 * MB),
            ("4GB", 4 * GB),
            ("1g", 1 * GB),
            (" 64 kb ", 64 * KB),
            ("1.5KB", 1536),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            parse_size("0MB")

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_size("lots")


class TestFormatSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [(4 * MB, "4MB"), (1 * GB, "1GB"), (512 * KB, "512KB"), (1536, "1536B")],
    )
    def test_exact_suffixes(self, nbytes, expected):
        assert format_size(nbytes) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            format_size(0)

    @given(st.integers(min_value=1, max_value=1 << 48))
    def test_roundtrip(self, nbytes):
        assert parse_size(format_size(nbytes)) == nbytes


class TestPowersOfTwo:
    @given(st.integers(min_value=0, max_value=62))
    def test_powers_recognised(self, k):
        assert is_power_of_two(1 << k)
        assert log2_exact(1 << k) == k

    @pytest.mark.parametrize("value", [0, -4, 3, 6, 1000])
    def test_non_powers_rejected(self, value):
        assert not is_power_of_two(value)
        with pytest.raises(ConfigError):
            log2_exact(value)
