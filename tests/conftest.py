"""Shared fixtures: small geometries and traces that run in milliseconds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.address import AddressMap
from repro.config import MigrationConfig, SystemConfig
from repro.trace.record import TraceChunk, make_chunk
from repro.units import KB, MB


@pytest.fixture
def tiny_amap() -> AddressMap:
    """16 MB total, 4 MB on-package, 1 MB macro pages -> N = 4 slots."""
    return AddressMap(
        total_bytes=16 * MB,
        onpkg_bytes=4 * MB,
        macro_page_bytes=1 * MB,
        subblock_bytes=4 * KB,
    )


@pytest.fixture
def small_config() -> SystemConfig:
    """A geometry small enough for exhaustive per-access checks."""
    return SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm="live",
            macro_page_bytes=1 * MB,
            swap_interval=500,
        ),
    )


def synthetic_trace(
    n: int = 5000,
    footprint: int = 32 * MB,
    seed: int = 0,
    hot_fraction: float = 0.1,
    hot_weight: float = 0.8,
    mean_gap: int = 30,
) -> TraceChunk:
    """A skewed trace with a scattered hot region (no workload machinery)."""
    rng = np.random.default_rng(seed)
    n_lines = footprint // 64
    hot_lines = max(1, int(n_lines * hot_fraction))
    hot_base = (n_lines // 2) // 64 * 64  # hot region in the middle
    is_hot = rng.random(n) < hot_weight
    lines = np.where(
        is_hot,
        hot_base + rng.integers(0, hot_lines, size=n),
        rng.integers(0, n_lines, size=n),
    )
    addr = (lines % n_lines) * 64
    time = np.cumsum(rng.integers(1, 2 * mean_gap, size=n))
    return make_chunk(addr, time=time)


@pytest.fixture
def skewed_trace() -> TraceChunk:
    return synthetic_trace()
