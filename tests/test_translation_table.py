"""Tests for the bidirectional translation table (Figs 6/7/9)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.address import AddressMap
from repro.errors import TranslationTableError
from repro.migration.table import EMPTY, PageCategory, TranslationTable
from repro.units import KB, MB


def make_table(n_slots=4, reserve=True):
    amap = AddressMap(
        total_bytes=n_slots * 4 * MB,
        onpkg_bytes=n_slots * MB,
        macro_page_bytes=1 * MB,
        subblock_bytes=4 * KB,
    )
    return TranslationTable(amap, reserve_empty_slot=reserve)


class TestInitialState:
    def test_identity_mapping(self):
        t = make_table(reserve=False)
        for page in range(t.n_slots):
            assert t.resolve(page) == (True, page)
            assert t.category(page) is PageCategory.ORIGINAL_FAST
        assert t.empty_slot() is None

    def test_n_minus_1_reserves_last_slot(self):
        t = make_table(reserve=True)
        assert t.empty_slot() == t.n_slots - 1
        ghost = t.n_slots - 1
        assert t.category(ghost) is PageCategory.GHOST
        assert t.resolve(ghost) == (False, t.amap.ghost_page)

    def test_offpkg_pages_identity(self):
        t = make_table()
        page = t.n_slots + 3
        assert t.resolve(page) == (False, page)
        assert t.category(page) is PageCategory.ORIGINAL_SLOW


class TestPairingSemantics:
    def test_pair_creates_mf_and_ms(self):
        t = make_table(reserve=False)
        hot = t.n_slots + 5
        t.set_pair(1, hot)
        assert t.category(hot) is PageCategory.MIGRATED_FAST
        assert t.resolve(hot) == (True, 1)
        # page 1's data implicitly lives at the hot page's machine slot
        assert t.category(1) is PageCategory.MIGRATED_SLOW
        assert t.resolve(1) == (False, hot)

    def test_cam_uniqueness_enforced(self):
        t = make_table(reserve=False)
        hot = t.n_slots + 5
        t.set_pair(1, hot)
        with pytest.raises(TranslationTableError):
            t.set_pair(2, hot)

    def test_pending_bit_routes_to_ghost(self):
        t = make_table(reserve=False)
        t.set_pending(1, True)
        assert t.resolve(1) == (False, t.amap.ghost_page)
        assert t.category(1) is PageCategory.GHOST
        t.set_pending(1, False)
        assert t.resolve(1) == (True, 1)

    def test_pending_does_not_block_cam(self):
        """P bypasses the RAM direction only (Section III-A)."""
        t = make_table()
        e = t.empty_slot()
        hot = t.n_slots + 2
        t.set_pair(e, hot)
        t.set_pending(e, True)
        assert t.resolve(hot) == (True, e)          # CAM still works
        assert t.resolve(e) == (False, t.amap.ghost_page)  # RAM bypassed

    def test_set_empty_clears_bits(self):
        t = make_table(reserve=False)
        t.set_pending(2, True)
        t.set_empty(2)
        assert not t.p_bit[2]
        assert t.category(2) is PageCategory.GHOST
        assert t.empty_slot() == 2

    def test_resident_pages(self):
        t = make_table()
        resident = t.resident_pages()
        assert len(resident) == t.n_slots - 1

    def test_bad_indices_rejected(self):
        t = make_table()
        with pytest.raises(TranslationTableError):
            t.set_pair(99, 0)
        with pytest.raises(TranslationTableError):
            t.set_pair(0, 10**9)
        with pytest.raises(TranslationTableError):
            t.resolve(-1)
        with pytest.raises(TranslationTableError):
            t.category(10**9)


class TestFill:
    def test_fill_routes_per_subblock(self):
        t = make_table()
        e = t.empty_slot()
        hot = t.n_slots + 1
        t.set_pair(e, hot)
        t.set_pending(e, True)
        t.begin_fill(e, source_machine_page=hot)
        assert t.filling
        # nothing landed: resolve off-package to the old copy
        assert t.resolve(hot, subblock=0) == (False, hot)
        t.fill_subblock(3)
        assert t.resolve(hot, subblock=3) == (True, e)
        assert t.resolve(hot, subblock=4) == (False, hot)
        # vectorised resolution stays conservative during the fill
        on, machine = t.resolve_many(np.array([hot]))
        assert not on[0] and machine[0] == hot

    def test_fill_completes_when_bitmap_full(self):
        t = make_table()
        e = t.empty_slot()
        hot = t.n_slots + 1
        t.set_pair(e, hot)
        t.begin_fill(e, hot)
        for sb in range(t.amap.subblocks_per_page):
            t.fill_subblock(sb)
        assert not t.filling
        assert t.resolve(hot) == (True, e)

    def test_end_fill_early(self):
        t = make_table()
        e = t.empty_slot()
        hot = t.n_slots + 1
        t.set_pair(e, hot)
        t.begin_fill(e, hot)
        t.end_fill()
        assert not t.filling
        assert t.resolve(hot) == (True, e)

    def test_single_fill_at_a_time(self):
        t = make_table(n_slots=8)
        t.set_pair(0, t.n_slots + 1)
        t.begin_fill(0, t.n_slots + 1)
        with pytest.raises(TranslationTableError):
            t.begin_fill(1, t.n_slots + 2)

    def test_fill_needs_mapped_page(self):
        t = make_table()
        with pytest.raises(TranslationTableError):
            t.begin_fill(t.empty_slot(), 0)

    def test_fill_without_begin_rejected(self):
        t = make_table()
        with pytest.raises(TranslationTableError):
            t.fill_subblock(0)

    def test_end_fill_clears_bitmap_residue(self):
        # regression (found by the protocol model checker): a fill driven
        # to completion through fill_subblock left the bitmap all-ones,
        # which the next between-epoch audit rejects as stray state
        t = make_table()
        e = t.empty_slot()
        hot = t.n_slots + 1
        t.set_pair(e, hot)
        t.begin_fill(e, hot)
        for sb in range(t.amap.subblocks_per_page):
            t.fill_subblock(sb)
        assert not t.filling
        assert not bool(t.fill_bitmap.any())
        t.audit()


class TestInvariants:
    def test_fresh_table_passes(self):
        make_table().check_invariants()
        make_table(reserve=False).check_invariants()

    def test_detects_cam_duplicate(self):
        t = make_table(reserve=False)
        t.pair[0] = 99  # corrupt behind the API
        t.pair[1] = 99
        with pytest.raises(TranslationTableError):
            t.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 40)), max_size=20))
    def test_random_mutations_keep_resolvability(self, ops):
        """However the table is driven through its public API, every page
        must always resolve to exactly one machine location."""
        t = make_table(n_slots=8)
        for slot, page in ops:
            try:
                t.set_pair(slot, page % t.amap.n_total_pages)
            except TranslationTableError:
                continue
        t.check_invariants()
        machines = set()
        for page in range(t.amap.n_total_pages):
            on, machine = t.resolve(page)
            key = ("on", machine) if on else ("off", machine)
            assert key not in machines or machine == t.amap.ghost_page
            machines.add(key)
