"""RAS subsystem tests: config validation, CE telemetry, patrol scrub,
wear leveling, predictive frame retirement (table, engine, controller),
bit-identity of the disabled default, checkpointing, and a Hypothesis
property over quarantine/abort/retirement interleavings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.address import AddressMap
from repro.config import (
    MigrationConfig,
    RASConfig,
    ResilienceConfig,
    SystemConfig,
)
from repro.core.simulator import EpochSimulator
from repro.datamodel.shadow import ShadowMemory
from repro.errors import (
    ConfigError,
    MigrationError,
    SimulationError,
    TranslationTableError,
)
from repro.experiments.chaos_soak import soak_config, soak_fault_plan, soak_trace
from repro.migration.engine import MigrationEngine
from repro.migration.policies import EpochMonitor
from repro.migration.table import EMPTY, TranslationTable
from repro.ras import (
    CETelemetry,
    PatrolScrubber,
    WearModel,
    retirement_moves,
)
from repro.resilience.faults import (
    CORE_FAULT_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.stats.report import ras_table
from repro.trace.record import make_chunk
from repro.units import KB, MB

from .conftest import synthetic_trace

N_SLOTS = 8


def make_ras_engine(algorithm="live", n_spares=2, **kwargs):
    """An engine over an 8-slot geometry with spare pages reserved."""
    amap = AddressMap(
        total_bytes=N_SLOTS * 4 * MB,
        onpkg_bytes=N_SLOTS * MB,
        macro_page_bytes=1 * MB,
        subblock_bytes=64 * KB,
    )
    spares = frozenset(range(amap.ghost_page - n_spares, amap.ghost_page))
    cfg = MigrationConfig(
        algorithm=algorithm, macro_page_bytes=1 * MB, subblock_bytes=64 * KB,
        swap_interval=100, **kwargs,
    )
    engine = MigrationEngine(amap, cfg, reserved_pages=spares)
    return engine, sorted(spares)


def observe_hot_page(engine, page, count=5, t0=0):
    engine.observe_epoch(
        slots=np.array([], dtype=np.int64),
        slot_times=np.array([], dtype=np.int64),
        offpkg_pages=np.full(count, page, dtype=np.int64),
        off_times=np.arange(t0, t0 + count, dtype=np.int64),
        off_subblocks=np.zeros(count, dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# configuration validation (satellite: RASConfig + ResilienceConfig)
# ---------------------------------------------------------------------------

class TestRASConfigValidation:
    @pytest.mark.parametrize("kw", [
        dict(ce_base_rate=1.5),
        dict(ce_base_rate=-0.1),
        dict(ce_threshold=0),
        dict(ce_leak=-0.5),
        dict(ce_cost_cycles=-1),
        dict(scrub_interval_epochs=-1),
        dict(scrub_frames_per_pass=0),
        dict(scrub_stride_bytes=0),
        dict(spare_pages=-1),
        dict(min_usable_frames=0),
        dict(wear_penalty=-1.0),
        dict(wear_window=0),
        dict(enabled=True, spare_pages=0),
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ConfigError):
            RASConfig(**kw)

    def test_default_is_disabled_and_reserves_nothing(self):
        ras = RASConfig()
        assert not ras.enabled
        amap = AddressMap(
            total_bytes=32 * MB, onpkg_bytes=4 * MB,
            macro_page_bytes=1 * MB, subblock_bytes=64 * KB,
        )
        assert ras.reserved_pages(amap) == frozenset()

    def test_reserved_pages_sit_below_ghost(self):
        amap = AddressMap(
            total_bytes=32 * MB, onpkg_bytes=4 * MB,
            macro_page_bytes=1 * MB, subblock_bytes=64 * KB,
        )
        ras = RASConfig(enabled=True, spare_pages=3)
        spares = ras.reserved_pages(amap)
        assert spares == frozenset(
            {amap.ghost_page - 3, amap.ghost_page - 2, amap.ghost_page - 1}
        )

    def test_with_ras_builds_enabled_config(self):
        cfg = SystemConfig(
            total_bytes=32 * MB, onpkg_bytes=4 * MB,
            migration=MigrationConfig(macro_page_bytes=1 * MB),
        ).with_ras(enabled=True, ce_base_rate=0.01, spare_pages=1)
        assert cfg.ras.enabled and cfg.ras.ce_base_rate == 0.01


class TestResilienceConfigValidation:
    """Regression coverage for the pre-existing validation rules."""

    @pytest.mark.parametrize("kw", [
        dict(audit_interval=-1),
        dict(epoch_cycle_budget=-1),
        dict(max_consecutive_failures=0),
        dict(max_consecutive_failures=-2),
        dict(watchdog_action="explode"),
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ConfigError):
            ResilienceConfig(**kw)

    def test_valid_construction(self):
        r = ResilienceConfig(
            audit_interval=4, epoch_cycle_budget=10_000,
            max_consecutive_failures=5, watchdog_action="degrade",
        )
        assert r.watchdog_action == "degrade"


# ---------------------------------------------------------------------------
# CE telemetry
# ---------------------------------------------------------------------------

class TestCETelemetry:
    def test_clustered_ces_cross_threshold(self):
        t = CETelemetry(4, threshold=3, leak=0.25)
        for _ in range(3):
            t.record(1)
        assert t.over_threshold() == [1]

    def test_isolated_ces_leak_away(self):
        t = CETelemetry(4, threshold=3, leak=1.0)
        for _ in range(10):  # one CE per epoch, fully leaked each time
            t.record(2)
            assert t.over_threshold() == []
            t.decay()
        assert t.lifetime[2] == 10  # lifetime never leaks

    def test_sources_counted_separately(self):
        t = CETelemetry(4, threshold=8, leak=0.0)
        t.record(0, 2, source="demand")
        t.record(1, 3, source="scrub")
        t.record(2, 4, source="burst")
        assert (t.ce_demand, t.ce_scrub, t.ce_burst) == (2, 3, 4)
        assert t.total == 9

    def test_reset_frame_drains_bucket(self):
        t = CETelemetry(4, threshold=2, leak=0.0)
        t.record(3, 5)
        t.reset_frame(3)
        assert t.over_threshold() == []
        assert t.lifetime[3] == 5

    def test_state_dict_round_trip(self):
        t = CETelemetry(4, threshold=3, leak=0.25)
        t.record(1, 2, source="scrub")
        t.decay()
        u = CETelemetry(4, threshold=3, leak=0.25)
        u.load_state_dict(t.state_dict())
        assert np.array_equal(u.level, t.level)
        assert u.ce_scrub == 2


# ---------------------------------------------------------------------------
# patrol scrubber
# ---------------------------------------------------------------------------

class TestPatrolScrubber:
    def make(self, **kw):
        defaults = dict(
            interval_epochs=4, frames_per_pass=2,
            stride_bytes=4 * KB, page_bytes=64 * KB,
        )
        defaults.update(kw)
        return PatrolScrubber(8, **defaults)

    def test_due_every_interval(self):
        s = self.make(interval_epochs=3)
        assert [s.due(e) for e in range(6)] == [
            False, False, True, False, False, True,
        ]

    def test_zero_interval_never_due(self):
        s = self.make(interval_epochs=0)
        assert not any(s.due(e) for e in range(10))

    def test_round_robin_covers_all_frames(self):
        s = self.make(frames_per_pass=3)
        usable = np.arange(8)
        seen = []
        for _ in range(4):
            seen.extend(s.next_frames(usable))
        assert seen[:8] == list(range(8))  # full rotation before repeats

    def test_cursor_skips_retired_frames(self):
        s = self.make(frames_per_pass=2)
        usable = np.array([0, 1, 3, 4, 6, 7])  # 2 and 5 retired
        frames = []
        for _ in range(3):
            frames.extend(s.next_frames(usable))
        assert frames == [0, 1, 3, 4, 6, 7]
        assert 2 not in frames and 5 not in frames

    def test_pass_larger_than_usable_set(self):
        s = self.make(frames_per_pass=10)
        assert s.next_frames(np.array([2, 5])) == [2, 5]
        assert s.next_frames(np.array([], dtype=np.int64)) == []

    def test_latents_surface_only_when_scrubbed(self):
        s = self.make()
        s.plant_latent(3, 2)
        s.plant_latent(3)
        assert s.collect_latents([1, 2]) == 0
        assert s.collect_latents([3]) == 3
        assert s.collect_latents([3]) == 0  # consumed

    def test_reads_per_frame_from_stride(self):
        s = self.make(stride_bytes=4 * KB, page_bytes=64 * KB)
        assert s.reads_per_frame == 16


# ---------------------------------------------------------------------------
# wear model
# ---------------------------------------------------------------------------

class TestWearModel:
    def test_demand_writes_count_lines(self):
        w = WearModel(16, penalty_weight=1.0, window=4)
        w.observe_demand(np.array([5, 5, 9]))
        assert w.writes[5] == 2 and w.writes[9] == 1
        assert w.total_writes == 3

    def test_copy_counts_full_page(self):
        w = WearModel(16, penalty_weight=1.0, window=4)
        w.observe_copy(7, 1 * MB)
        assert w.writes[7] == MB // 64
        assert w.max_page_writes == MB // 64

    def test_penalty_scales_with_writes(self):
        w = WearModel(16, penalty_weight=0.5, window=4)
        w.observe_demand(np.array([3] * 8))
        assert w.penalty(np.array([3]))[0] == pytest.approx(0.5 * 8 / 4)
        assert w.penalty(np.array([4]))[0] == 0.0

    def test_state_dict_round_trip(self):
        w = WearModel(16, penalty_weight=0.5, window=4)
        w.observe_copy(2, 128)
        v = WearModel(16, penalty_weight=0.5, window=4)
        v.load_state_dict(w.state_dict())
        assert np.array_equal(v.writes, w.writes)


class TestWearSteering:
    def test_penalty_flips_hottest_page_choice(self):
        m = EpochMonitor(4)
        off = np.array([10] * 5 + [11] * 4, dtype=np.int64)
        m.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=off,
            off_times=np.arange(off.size, dtype=np.int64),
        )
        assert m.hottest_page() == (10, 5)
        penalty = lambda pages: np.where(pages == 10, 2.0, 0.0)  # noqa: E731
        page, count = m.hottest_page(wear_penalty=penalty)
        assert page == 11
        assert count == 4  # raw epoch count, not the penalised score


# ---------------------------------------------------------------------------
# translation-table retirement
# ---------------------------------------------------------------------------

class TestTableRetirement:
    def make_table(self, n_spares=2):
        amap = AddressMap(
            total_bytes=16 * MB, onpkg_bytes=4 * MB,
            macro_page_bytes=1 * MB, subblock_bytes=64 * KB,
        )
        spares = sorted(
            range(amap.ghost_page - n_spares, amap.ghost_page)
        )
        table = TranslationTable(
            amap, reserve_empty_slot=True, reserved_pages=frozenset(spares)
        )
        return table, spares

    def test_identity_retire(self):
        table, spares = self.make_table()
        occupant = table.retire_slot(0, spares[0])
        assert occupant == 0
        assert table.retired[0] and table.remap[0] == spares[0]
        assert table.page_in_slot(0) == EMPTY
        assert table.machine_of[0] == spares[0]
        assert not table.onpkg[0]
        assert table.is_retired_home(0)
        assert table.n_usable_slots == table.n_slots - 1
        table.audit()
        table.check_invariants()

    def test_empty_slot_never_counts_retired_frames(self):
        table, spares = self.make_table()
        free = table.empty_slot()
        victim = next(s for s in range(table.n_slots) if s != free)
        table.retire_slot(victim, spares[0])
        assert table.empty_slot() == free

    def test_cannot_retire_the_empty_slot(self):
        table, spares = self.make_table()
        free = table.empty_slot()
        with pytest.raises(TranslationTableError, match="empty slot"):
            table.retire_slot(free, spares[0])

    def test_cannot_retire_twice(self):
        table, spares = self.make_table()
        table.retire_slot(0, spares[0])
        with pytest.raises(TranslationTableError, match="already retired"):
            table.retire_slot(0, spares[1])

    def test_spare_must_be_reserved_and_unused(self):
        table, spares = self.make_table()
        with pytest.raises(TranslationTableError, match="not a reserved"):
            table.retire_slot(0, table.n_slots + 1)
        table.retire_slot(0, spares[0])
        with pytest.raises(TranslationTableError, match="already in use"):
            table.retire_slot(1, spares[0])

    def test_reset_identity_keeps_retirements(self):
        table, spares = self.make_table()
        table.retire_slot(1, spares[1])
        table.reset_identity()
        assert table.retired[1]
        assert table.machine_of[1] == spares[1]
        assert table.empty_slot() is not None
        table.audit()
        table.check_invariants()

    def test_state_dict_round_trip_carries_retirement(self):
        table, spares = self.make_table()
        table.retire_slot(0, spares[0])
        other, _ = self.make_table()
        other.load_state_dict(table.state_dict())
        assert other.retired[0] and other.remap == {0: spares[0]}
        other.audit()

    def test_pre_ras_snapshot_loads_without_retirement_keys(self):
        table, _ = self.make_table()
        state = table.state_dict()
        del state["retired"], state["remap"]
        table.load_state_dict(state)
        assert table.n_retired == 0 and table.remap == {}


class TestRetirementMoves:
    def test_identity_frame_is_one_copy_to_the_spare(self):
        engine, spares = make_ras_engine()
        steps = retirement_moves(engine.table, 2, spares[0], 1 * MB)
        assert len(steps) == 1
        assert steps[0].src == ("slot", 2)
        assert steps[0].dst == ("mach", spares[0])
        assert steps[0].cross_boundary

    def test_transposed_frame_sends_occupant_home(self):
        engine, spares = make_ras_engine()
        hot = N_SLOTS + 3
        observe_hot_page(engine, hot)
        assert engine.maybe_swap(now=100).triggered
        now = engine.active.end + 1
        slot = engine.table.slot_of(hot)
        steps = retirement_moves(engine.table, slot, spares[0], 1 * MB)
        assert len(steps) == 2
        # page `slot`'s data (parked at the occupant's home) moves first
        assert steps[0].src == ("mach", hot)
        assert steps[0].dst == ("mach", spares[0])
        assert steps[1].src == ("slot", slot)
        assert steps[1].dst == ("mach", hot)

    def test_rejects_mid_swap_slot(self):
        engine, spares = make_ras_engine()
        engine.table.p_bit[2] = True  # a torn swap left the slot busy
        with pytest.raises(MigrationError, match="mid-swap"):
            retirement_moves(engine.table, 2, spares[0], 1 * MB)


# ---------------------------------------------------------------------------
# engine copy-out
# ---------------------------------------------------------------------------

class TestEngineRetireFrame:
    def test_retire_preserves_data_and_stalls(self):
        engine, spares = make_ras_engine()
        shadow = ShadowMemory(engine.table)
        engine.shadow = shadow
        end = engine.retire_frame(1000, 0, spares[0])
        assert end > 1000
        assert engine.active.in_flight(end - 1)
        assert engine.active.recovery
        assert engine.frames_retired == 1
        assert shadow.verify_table(engine.table) == []
        assert not shadow.violations
        kinds = [e.kind for e in engine.degradation_events]
        assert "frame-retired" in kinds

    def test_retire_transposed_frame_with_shadow(self):
        engine, spares = make_ras_engine()
        shadow = ShadowMemory(engine.table)
        engine.shadow = shadow
        hot = N_SLOTS + 3
        observe_hot_page(engine, hot)
        assert engine.maybe_swap(now=100).triggered
        now = engine.active.end + 1
        slot = engine.table.slot_of(hot)
        engine.retire_frame(now, slot, spares[0])
        assert engine.table.retired[slot]
        assert shadow.verify_table(engine.table) == []
        assert not shadow.violations
        engine.table.audit()

    def test_retire_refused_while_swap_in_flight(self):
        engine, spares = make_ras_engine()
        observe_hot_page(engine, N_SLOTS + 3)
        assert engine.maybe_swap(now=100).triggered
        with pytest.raises(MigrationError, match="in flight"):
            engine.retire_frame(engine.active.end - 1, 0, spares[0])

    def test_retire_refused_when_quarantined(self):
        engine, spares = make_ras_engine()
        engine.quarantine(50, "test")
        with pytest.raises(MigrationError, match="quarantined"):
            engine.retire_frame(100, 0, spares[0])

    def test_retirement_copies_wear_the_spare(self):
        engine, spares = make_ras_engine()
        engine.wear = WearModel(
            engine.amap.n_total_pages, penalty_weight=0.0, window=1024
        )
        engine.retire_frame(1000, 0, spares[0])
        assert engine.wear.writes[spares[0]] == MB // 64

    def test_swap_never_promotes_a_retired_home(self):
        engine, spares = make_ras_engine()
        engine.retire_frame(1000, 0, spares[0])
        now = engine.active.end + 1
        observe_hot_page(engine, 0, t0=now)  # page 0 now lives at the spare
        decision = engine.maybe_swap(now)
        assert not decision.triggered


# ---------------------------------------------------------------------------
# end-to-end: RAS-enabled simulation
# ---------------------------------------------------------------------------

class TestRasSimulation:
    def test_chaos_soak_retires_and_degrades_gracefully(self):
        sim = EpochSimulator(soak_config("live"), track_data=True)
        sim.attach_faults(soak_fault_plan())
        result = sim.run(soak_trace(60))
        ras = result.ras
        assert ras is not None
        assert result.data_violations == 0
        assert sim.shadow.verify_table(sim.table) == []
        assert ras.frames_retired >= 1
        assert ras.frames_usable == ras.frames_total - ras.frames_retired
        assert ras.spares_remaining == ras.spares_total - ras.frames_retired
        sim.table.audit()
        # capacity/eta trajectory shrinks with each retirement
        usable = [u for _, u, _, _ in ras.capacity_series]
        assert usable[0] == ras.frames_total
        assert usable[-1] == ras.frames_usable
        assert all(a >= b for a, b in zip(usable, usable[1:]))
        assert all(0.0 <= eta <= 1.0 for _, _, _, eta in ras.capacity_series)
        rendered = ras_table(result).render()
        assert "retired: frame" in rendered

    def test_scrubber_surfaces_latent_ces(self):
        cfg = soak_config("live")
        sim = EpochSimulator(cfg, track_data=False)
        sim.attach_faults(FaultPlan(
            events=(FaultEvent(epoch=1, kind=FaultKind.SCRUB_LATENT, param=5),),
        ))
        result = sim.run(soak_trace(20))
        assert result.ras.ce_scrub >= 1
        assert result.ras.scrub_passes >= 1
        assert result.ras.scrub_reads > 0

    def test_traces_may_not_touch_spare_pages(self):
        cfg = soak_config("live")
        amap = cfg.address_map()
        spare = min(cfg.ras.reserved_pages(amap))
        addr = np.array([spare * (64 * KB)], dtype=np.int64)
        sim = EpochSimulator(cfg)
        with pytest.raises(SimulationError, match="reserved"):
            sim.run(make_chunk(addr, time=np.array([1], dtype=np.int64)))

    def test_disabled_ras_is_bit_identical(self):
        trace = synthetic_trace(4000)
        base = SystemConfig(
            total_bytes=64 * MB, onpkg_bytes=8 * MB,
            migration=MigrationConfig(macro_page_bytes=1 * MB, swap_interval=500),
        )
        # identical geometry, RAS present-but-disabled with hostile knobs
        knobs = base.with_ras(
            enabled=False, ce_base_rate=0.9, seed=123, scrub_interval_epochs=1,
        )
        a = EpochSimulator(base).run(trace)
        b = EpochSimulator(knobs).run(trace)
        assert b.ras is None
        assert a.total_latency == b.total_latency
        assert np.array_equal(a.epoch_latency, b.epoch_latency)
        assert a.swaps_triggered == b.swaps_triggered

    def test_core_fault_kinds_exclude_ras_kinds(self):
        """Seeded legacy campaigns must replay identically: the default
        random-plan kind pool is pinned to the original five."""
        assert FaultKind.CE_BURST not in CORE_FAULT_KINDS
        assert FaultKind.SCRUB_LATENT not in CORE_FAULT_KINDS
        plan = FaultPlan.random(seed=4, n_epochs=200, n_slots=8, rate=0.5)
        assert plan.events
        assert all(ev.kind in CORE_FAULT_KINDS for ev in plan.events)

    def test_checkpoint_round_trip_mid_soak(self):
        cfg = soak_config("live")
        full = soak_trace(40)
        cut = full.addr.size // 2
        first = make_chunk(full.addr[:cut], time=full.time[:cut])
        second = make_chunk(full.addr[cut:], time=full.time[cut:])

        sim = EpochSimulator(cfg, track_data=True)
        sim.attach_faults(soak_fault_plan())
        sim.run(first)
        snapshot = sim.state_dict()
        res_a = sim.run(second)

        resumed = EpochSimulator(cfg, track_data=True)
        resumed.attach_faults(soak_fault_plan())
        resumed.load_state_dict(snapshot)
        res_b = resumed.run(second)

        assert res_a.total_latency == res_b.total_latency
        assert res_a.ras.frames_retired == res_b.ras.frames_retired
        assert res_a.ras.ce_demand == res_b.ras.ce_demand
        assert res_a.ras.ce_scrub == res_b.ras.ce_scrub
        assert res_a.ras.scrub_passes == res_b.ras.scrub_passes
        assert np.array_equal(
            resumed.table.state_dict()["pair"], sim.table.state_dict()["pair"]
        )
        resumed.table.audit()


# ---------------------------------------------------------------------------
# property: quarantine x abort-recovery x retirement interleavings
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.tuples(
        st.sampled_from(["swap", "abort_swap", "retire", "quarantine", "wait"]),
        st.integers(0, 63),
    ),
    min_size=1, max_size=25,
)

MIN_USABLE = 2


class TestInterleavingProperty:
    @given(ops=OPS)
    @settings(max_examples=40, deadline=None)
    def test_any_interleaving_leaves_the_table_sound(self, ops):
        engine, spares = make_ras_engine(n_spares=6)
        shadow = ShadowMemory(engine.table)
        engine.shadow = shadow
        table = engine.table
        pool = list(spares)
        data_pages = [
            p for p in range(N_SLOTS, engine.amap.n_total_pages)
            if p not in set(spares) and p != engine.amap.ghost_page
        ]
        now = 1_000
        for op, param in ops:
            now += 40_000  # shorter than a copy window: busy paths fire
            if op == "wait":
                now += 3_000_000  # longer than any window: quiescent paths
            elif op in ("swap", "abort_swap"):
                if op == "abort_swap":
                    engine.inject_abort(param % 3)
                observe_hot_page(
                    engine, data_pages[param % len(data_pages)], t0=now
                )
                engine.maybe_swap(now)
            elif op == "quarantine":
                if not engine.quarantined:
                    engine.quarantine(now, "property interleaving")
            elif op == "retire":
                # mirror the RAS controller's retirement policy gates
                frame = param % table.n_slots
                if (
                    engine.quarantined
                    or not pool
                    or (engine.active is not None
                        and engine.active.in_flight(now))
                    or table.retired[frame]
                    or table.page_in_slot(frame) == EMPTY
                    or table.n_usable_slots - 1 < MIN_USABLE
                ):
                    continue
                engine.retire_frame(now, frame, pool.pop(0))
            table.check_invariants()

        # regardless of interleaving: pairing invariant intact, the free
        # frame survives, the usable floor holds, and no data was lost
        table.audit()
        assert table.n_usable_slots >= MIN_USABLE
        assert table.empty_slot() is not None
        assert not shadow.violations
        assert shadow.verify_table(table) == []
