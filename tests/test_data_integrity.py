"""Differential data-integrity harness (the tentpole acceptance test).

Runs full simulations with ``track_data=True`` so every demand access is
checked against the :class:`repro.datamodel.ShadowMemory`, and compares
the shadow's write-generation state against an *independent* oracle
computed straight from the trace. The abort sweep then injects a swap
abort at every copy-step boundary (and, for Live Migration, at
sub-block micro-boundaries) of all three designs and asserts the
data-safe recovery leaves every page readable with its last-written
generation.

The bare-rollback regression pins the counterexample the protocol
checker found: restoring the table after the Ω-resolution copy without
copying surviving duplicates home serves dead data. Its model-level
twin lives in tests/test_protocol_checker.py.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.config import MigrationConfig, SystemConfig
from repro.errors import MigrationError
from repro.migration.recovery import (
    BUFFER,
    apply_executed_copies,
    content_of_table,
    recovery_moves,
)
from repro.resilience import (
    ABORT_RECOVERED,
    FaultEvent,
    FaultKind,
    FaultPlan,
    load_checkpoint,
    restore_simulator,
    save_checkpoint,
)
from repro.trace.record import make_chunk
from repro.units import KB, MB

INTERVAL = 250
ALGOS = ("N", "N-1", "live")
#: sweeping 0..7 covers every copy step of every design's longest plan
COPY_STEPS = range(8)


def config(algo="live", **resilience) -> SystemConfig:
    # 64 KB macro pages keep one swap's copy window (~20k cycles
    # cross-boundary) comparable to an epoch, so several swaps — and
    # therefore several abort landings — fit in one short trace
    cfg = SystemConfig(
        total_bytes=16 * MB,
        onpkg_bytes=2 * MB,
        migration=MigrationConfig(
            algorithm=algo, macro_page_bytes=64 * KB, swap_interval=INTERVAL
        ),
    )
    return cfg.with_resilience(**resilience) if resilience else cfg


def write_trace(cfg: SystemConfig, n_epochs: int, seed: int = 0):
    """A write-bearing trace whose hot page rotates every epoch.

    Each epoch hammers one off-package page (so a swap triggers every
    interval) and mixes in scattered accesses over the whole footprint;
    ~35% of accesses are stores. The reserved page Ω is never addressed.
    """
    amap = cfg.address_map()
    rng = np.random.default_rng(seed)
    n = n_epochs * INTERVAL
    offpkg = [
        p for p in range(amap.n_onpkg_pages, amap.n_total_pages)
        if p != amap.ghost_page
    ]
    epoch = np.arange(n) // INTERVAL
    hot = np.array([offpkg[e % len(offpkg)] for e in range(n_epochs)])
    pages = hot[epoch]
    cold = rng.integers(0, amap.n_total_pages - 1, size=n)  # excludes Ω
    pages = np.where(rng.random(n) < 0.8, pages, cold)
    offsets = rng.integers(0, amap.subblocks_per_page, size=n)
    addr = pages * amap.macro_page_bytes + offsets * amap.subblock_bytes
    time = np.cumsum(rng.integers(1, 60, size=n))
    rw = (rng.random(n) < 0.35).astype(np.int8)
    return make_chunk(addr, time=time, rw=rw)


def oracle_generations(trace, amap) -> dict:
    """Per-(page, sub-block) write counts, straight from the trace."""
    pages = amap.page_of(trace.addr).tolist()
    sbs = amap.subblock_of(trace.addr).tolist()
    gen: dict[tuple[int, int], int] = {}
    for page, sb, rw in zip(pages, sbs, trace.rw.tolist()):
        if rw and page != amap.ghost_page:
            key = (page, sb)
            gen[key] = gen.get(key, 0) + 1
    return gen


def run_tracked(cfg: SystemConfig, trace, plan: FaultPlan | None = None):
    sim = repro.EpochSimulator(cfg, track_data=True)
    if plan is not None:
        sim.attach_faults(plan)
    result = sim.run(trace)
    return sim, result


def assert_data_clean(sim, result, trace) -> None:
    """Every read returned the last write, end to end."""
    shadow = sim.shadow
    assert result.data_violations == 0, shadow.violations[0].format()
    assert shadow.violations == []
    bad = shadow.verify_table(sim.engine.table)
    assert bad == [], bad[0].format()
    sim.engine.table.audit()
    assert shadow.generation == oracle_generations(trace, shadow.amap)


@pytest.fixture(scope="module")
def traces():
    """One shared write-bearing trace per algorithm's config geometry."""
    return {algo: write_trace(config(algo), n_epochs=8, seed=7)
            for algo in ALGOS}


# ----------------------------------------------------------------------
# fault-free differential: shadow == oracle under heavy migration
# ----------------------------------------------------------------------
class TestCleanDifferential:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_every_read_returns_last_write(self, algo, traces):
        cfg = config(algo)
        sim, result = run_tracked(cfg, traces[algo])
        assert sim.engine.swaps_triggered > 0, "harness must exercise swaps"
        assert sim.shadow.writes > 0 and sim.shadow.reads > 0
        assert_data_clean(sim, result, traces[algo])

    def test_track_data_does_not_change_the_numbers(self, traces):
        """The shadow is pure bookkeeping: every simulated figure is
        bit-identical with and without it."""
        trace = traces["live"]
        plain = repro.EpochSimulator(config("live")).run(trace)
        _, tracked = run_tracked(config("live"), trace)
        a, b = dataclasses.asdict(plain), dataclasses.asdict(tracked)
        a.pop("data_violations"), b.pop("data_violations")
        # track_data forces the stepwise loop, so the loop-coverage
        # counters legitimately differ — but they must partition the
        # same epoch count
        assert a.pop("fused_epochs") == b.pop("stepwise_epochs")
        assert b.pop("fused_epochs") == a.pop("stepwise_epochs") == 0
        assert a == b

    def test_track_data_disables_the_fused_loop(self):
        assert repro.EpochSimulator(config("live"))._should_fuse()
        sim = repro.EpochSimulator(config("live"), track_data=True)
        assert not sim._should_fuse()
        assert sim.shadow is not None


# ----------------------------------------------------------------------
# the abort sweep: every copy-step boundary of every design
# ----------------------------------------------------------------------
def abort_plan(step: int, n_epochs: int, subblocks: int = 0) -> FaultPlan:
    """Abort the swap of every other epoch at copy step ``step``."""
    events = [
        FaultEvent(epoch=e, kind=FaultKind.ABORT_SWAP, param=step,
                   subblocks=subblocks)
        for e in range(0, n_epochs, 2)
    ]
    return FaultPlan(events, seed=step)


class TestAbortSweep:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("step", COPY_STEPS)
    def test_abort_at_every_step_boundary_is_data_safe(
        self, algo, step, traces
    ):
        cfg = config(algo)
        trace = traces[algo]
        sim, result = run_tracked(cfg, trace, abort_plan(step, n_epochs=8))
        assert result.faults_injected > 0
        assert not result.quarantined
        assert_data_clean(sim, result, trace)
        if step == 0:
            # every plan has a copy step 0: the sweep must actually abort
            assert sim.engine.abort_recoveries > 0
        if sim.engine.abort_recoveries:
            events = [e for e in sim.degradation_events
                      if e.kind == ABORT_RECOVERED]
            assert events and all(e.recovered for e in events)
            assert sim.engine.recovery_bytes >= 0

    @pytest.mark.parametrize("subblocks", (1, 7, 15, 255))
    def test_live_fill_torn_mid_subblock_is_data_safe(
        self, subblocks, traces
    ):
        """Micro-boundary aborts: the fill dies *inside* copy step 0
        with only some sub-blocks landed."""
        cfg = config("live")
        trace = traces["live"]
        sim, result = run_tracked(
            cfg, trace, abort_plan(0, n_epochs=8, subblocks=subblocks)
        )
        assert sim.engine.abort_recoveries > 0
        assert not result.quarantined
        assert_data_clean(sim, result, trace)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_recovered_aborts_do_not_quarantine(self, algo, traces):
        cfg = config(algo, max_consecutive_failures=1)
        sim, result = run_tracked(cfg, traces[algo], abort_plan(1, n_epochs=8))
        assert sim.engine.abort_recoveries > 0
        assert not result.quarantined
        assert sim.engine.consecutive_failures == 0


# ----------------------------------------------------------------------
# pinned regression: the late-abort counterexample, at runtime
# ----------------------------------------------------------------------
class TestBareRollbackRegression:
    """Abort after the Ω-resolution copy (copy step 2 of an N-1 plan).

    A bare table rollback re-routes the migrated-in page to its old
    off-package home, which the Ω-resolution copy already overwrote:
    reads observably return dead data. The data-safe recovery copies the
    surviving on-package duplicate home first, and the same workload
    runs clean.
    """

    PLAN = abort_plan(2, n_epochs=8)

    def test_bare_rollback_serves_dead_data(self, traces):
        cfg = config("N-1", data_safe_abort=False)
        sim, result = run_tracked(cfg, traces["N-1"], self.PLAN)
        assert result.faults_injected > 0
        assert result.data_violations > 0
        assert sim.shadow.verify_table(sim.engine.table)

    def test_data_safe_recovery_runs_clean(self, traces):
        cfg = config("N-1")  # data_safe_abort defaults on
        sim, result = run_tracked(cfg, traces["N-1"], self.PLAN)
        assert sim.engine.abort_recoveries >= 1
        assert_data_clean(sim, result, traces["N-1"])


# ----------------------------------------------------------------------
# recovery planner unit coverage
# ----------------------------------------------------------------------
class TestRecoveryMoves:
    A = ("slot", 0)
    B = ("mach", 5)

    def _apply(self, content: dict, steps) -> dict:
        content = dict(content)
        for s in steps:
            content[s.dst] = content.get(s.src)
        return content

    def test_transposition_breaks_cycle_through_buffer(self):
        # pages 1 and 2 swapped relative to their targets: a 2-cycle
        content = {self.A: 2, self.B: 1}
        target = {1: self.A, 2: self.B}
        steps = recovery_moves(content, target, 1 * MB)
        assert len(steps) == 3
        assert steps[0].dst == BUFFER, "cycle must stage through the buffer"
        final = self._apply(content, steps)
        assert final[self.A] == 1 and final[self.B] == 2
        assert all(s.nbytes == 1 * MB for s in steps)

    def test_no_surviving_copy_is_an_error(self):
        with pytest.raises(MigrationError, match="no surviving copy"):
            recovery_moves({self.A: None}, {3: self.A}, 1 * MB)

    def test_executed_prefix_replay_marks_partial_copies_garbage(self):
        content = {self.A: 1, self.B: 2}
        apply_executed_copies(
            content, [(self.B, self.A, True), (self.A, BUFFER, False)]
        )
        assert content[self.A] == 2
        assert content[BUFFER] is None

    def test_content_of_table_covers_every_data_page(self):
        cfg = config("N-1")
        table = repro.EpochSimulator(cfg).engine.table
        content = content_of_table(table)
        pages = sorted(p for p in content.values() if p is not None)
        amap = cfg.address_map()
        assert pages == [
            p for p in range(amap.n_total_pages) if p != amap.ghost_page
        ]


# ----------------------------------------------------------------------
# checkpoint: the shadow is carried state
# ----------------------------------------------------------------------
class TestShadowCheckpoint:
    def test_resumed_tracked_run_is_identical(self, tmp_path, traces):
        cfg = config("live")
        trace = traces["live"]
        _, ref = run_tracked(cfg, trace, abort_plan(1, n_epochs=8))

        sim = repro.EpochSimulator(cfg, track_data=True)
        sim.attach_faults(abort_plan(1, n_epochs=8))
        result = repro.SimulationResult()
        path = tmp_path / "ck"
        chunk = 2 * INTERVAL
        for start in range(0, len(trace), chunk):
            sim.run_into(trace[start : start + chunk], result)
            save_checkpoint(path, sim, result)
            bundle = load_checkpoint(path)
            sim = restore_simulator(bundle)
            result = bundle.result
        assert sim.shadow is not None, "restore must re-attach the shadow"
        assert dataclasses.asdict(ref) == dataclasses.asdict(result)
        assert sim.shadow.verify_table(sim.engine.table) == []


# ----------------------------------------------------------------------
# property test: random workload x random abort landing stays clean
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    algo=st.sampled_from(ALGOS),
    step=st.integers(0, 7),
    epoch=st.integers(1, 5),
    subblocks=st.integers(0, 8),
)
def test_random_abort_landings_never_corrupt_data(
    seed, algo, step, epoch, subblocks
):
    cfg = config(algo)
    trace = write_trace(cfg, n_epochs=6, seed=seed)
    plan = FaultPlan(
        [FaultEvent(epoch=epoch, kind=FaultKind.ABORT_SWAP, param=step,
                    subblocks=subblocks)],
        seed=seed,
    )
    sim, result = run_tracked(cfg, trace, plan)
    assert not result.quarantined
    assert_data_clean(sim, result, trace)
