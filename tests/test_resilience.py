"""Resilience subsystem: checkpoint/restore, degradation, audits, ECC.

The fault *campaign* (hundreds of randomized scenarios) lives in
``test_fault_campaign.py`` behind the ``fault_campaign`` marker; this
module holds the deterministic unit and acceptance tests.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

import repro
from repro.config import MigrationConfig, ResilienceConfig, SystemConfig
from repro.errors import (
    CheckpointError,
    MigrationError,
    TranslationTableError,
    WatchdogError,
)
from repro.resilience import (
    AUDIT_FAILED,
    MIGRATION_QUARANTINED,
    TABLE_REPAIRED,
    WATCHDOG_BREACH,
    FaultEvent,
    FaultKind,
    FaultPlan,
    load_checkpoint,
    restore_simulator,
    run_resumable,
    save_checkpoint,
    summarize_events,
)
from repro.trace.io import write_trace
from repro.units import MB

from .conftest import synthetic_trace

INTERVAL = 250


def config(algo="live", **resilience) -> SystemConfig:
    cfg = SystemConfig(
        total_bytes=64 * MB,
        onpkg_bytes=8 * MB,
        migration=MigrationConfig(
            algorithm=algo, macro_page_bytes=1 * MB, swap_interval=INTERVAL
        ),
    )
    return cfg.with_resilience(**resilience) if resilience else cfg


def as_fields(result) -> dict:
    return dataclasses.asdict(result)


# ----------------------------------------------------------------------
# checkpoint / restore
# ----------------------------------------------------------------------
class TestCheckpointDeterminism:
    @pytest.mark.parametrize("algo", ["N", "N-1", "live"])
    def test_resumed_run_is_field_for_field_identical(self, algo, tmp_path):
        """Kill-and-resume at every chunk boundary == uninterrupted run."""
        cfg = config(algo)
        trace = synthetic_trace(n=4 * INTERVAL * 3, seed=11)

        ref = repro.EpochSimulator(cfg).run(trace)

        path = tmp_path / "ck"
        sim = repro.EpochSimulator(cfg)
        result = repro.SimulationResult()
        chunk = 2 * INTERVAL  # multiple of the swap interval
        for start in range(0, len(trace), chunk):
            sim.run_into(trace[start : start + chunk], result)
            save_checkpoint(path, sim, result)
            # simulate the process dying: rebuild everything from disk
            bundle = load_checkpoint(path)
            sim = restore_simulator(bundle)
            result = bundle.result

        assert as_fields(ref) == as_fields(result)

    def test_resume_with_fault_plan_keeps_injecting(self, tmp_path):
        """The fault plan is checkpointed state: a resumed run injects
        the remaining scheduled faults exactly as an uninterrupted one."""
        cfg = config("live", audit_interval=2)
        trace = synthetic_trace(n=8 * INTERVAL, seed=5)
        plan = FaultPlan.random(seed=42, n_epochs=8, n_slots=8, rate=0.9)

        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(plan)
        ref = sim.run(trace)
        assert ref.faults_injected > 0

        path = tmp_path / "ck"
        sim2 = repro.EpochSimulator(cfg)
        sim2.attach_faults(plan)
        result = repro.SimulationResult()
        for start in range(0, len(trace), INTERVAL):
            sim2.run_into(trace[start : start + INTERVAL], result)
            save_checkpoint(path, sim2, result)
            bundle = load_checkpoint(path)
            sim2 = restore_simulator(bundle)
            result = bundle.result

        assert as_fields(ref) == as_fields(result)

    def test_facade_save_and_resume(self, tmp_path):
        cfg = config("live")
        trace = synthetic_trace(n=4 * INTERVAL, seed=2)
        system = repro.HeterogeneousMainMemory(cfg)
        result = repro.SimulationResult()
        system.simulator.run_into(trace[: 2 * INTERVAL], result)
        path = tmp_path / "ck"
        system.save_checkpoint(path, result, extra={"note": "halfway"})

        resumed, result2, extra = repro.HeterogeneousMainMemory.resume(path)
        assert extra == {"note": "halfway"}
        resumed.simulator.run_into(trace[2 * INTERVAL :], result2)

        system.simulator.run_into(trace[2 * INTERVAL :], result)
        assert as_fields(result) == as_fields(result2)


class TestCheckpointFileFormat:
    def _checkpoint(self, tmp_path):
        cfg = config()
        sim = repro.EpochSimulator(cfg)
        result = sim.run(synthetic_trace(n=INTERVAL, seed=0))
        path = tmp_path / "ck"
        save_checkpoint(path, sim, result)
        return path

    def test_roundtrip(self, tmp_path):
        path = self._checkpoint(tmp_path)
        bundle = load_checkpoint(path)
        assert bundle.extra == {}
        assert bundle.migrate is True

    def test_bad_magic(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with open(path, "r+b") as fh:
            fh.write(b"NOTACKPT")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = self._checkpoint(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 100)
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path)

    def test_flipped_payload_byte(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(path)

    def test_truncated_header(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(CheckpointError, match="header"):
            load_checkpoint(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope")


class TestRunResumable:
    def test_resume_matches_uninterrupted(self, tmp_path):
        cfg = config("live")
        trace = synthetic_trace(n=6 * INTERVAL, seed=9)
        trace_path = tmp_path / "trace.bin"
        write_trace(trace_path, trace)

        ref = repro.EpochSimulator(cfg).run(trace)

        # uninterrupted driver run
        full = run_resumable(
            cfg, trace_path, tmp_path / "ck_a", chunk_records=2 * INTERVAL
        )
        assert as_fields(ref) == as_fields(full)

        # killed after one chunk: pre-seed the checkpoint, then resume
        sim = repro.EpochSimulator(cfg)
        partial = repro.SimulationResult()
        sim.run_into(trace[: 2 * INTERVAL], partial)
        ck = tmp_path / "ck_b"
        save_checkpoint(
            ck, sim, partial,
            extra={"chunks_done": 1, "chunk_records": 2 * INTERVAL},
        )
        resumed = run_resumable(
            cfg, trace_path, ck, chunk_records=2 * INTERVAL
        )
        assert as_fields(ref) == as_fields(resumed)

    def test_chunk_size_mismatch_is_rejected(self, tmp_path):
        cfg = config("live")
        trace = synthetic_trace(n=4 * INTERVAL, seed=9)
        trace_path = tmp_path / "trace.bin"
        write_trace(trace_path, trace)
        ck = tmp_path / "ck"
        run_resumable(cfg, trace_path, ck, chunk_records=2 * INTERVAL)
        with pytest.raises(CheckpointError, match="chunk_records"):
            run_resumable(cfg, trace_path, ck, chunk_records=INTERVAL)


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class TestDegradedMode:
    def _abort_everything_plan(self, n_epochs):
        return FaultPlan(
            [FaultEvent(epoch=e, kind=FaultKind.ABORT_SWAP, param=e)
             for e in range(n_epochs)],
            seed=1,
        )

    def test_quarantine_after_k_failures(self):
        # data-safe recovered aborts are consistency-preserving and never
        # count toward quarantine; this test exercises the legacy
        # bare-rollback mode where they do
        cfg = config(
            "live", max_consecutive_failures=2, data_safe_abort=False
        )
        n_epochs = 12
        trace = synthetic_trace(n=n_epochs * INTERVAL, seed=3)
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(self._abort_everything_plan(n_epochs))
        result = sim.run(trace)

        assert result.quarantined
        assert sim.engine.quarantined
        kinds = summarize_events(result.degradation_events)
        assert kinds.get("swap-failed", 0) >= 2
        assert kinds.get(MIGRATION_QUARANTINED) == 1
        # quarantine rolled the table back to the boot-time mapping
        sim.table.check_invariants()
        from repro.migration.table import TranslationTable

        boot = TranslationTable(cfg.address_map())
        np.testing.assert_array_equal(sim.table.machine_of, boot.machine_of)
        np.testing.assert_array_equal(sim.table.onpkg, boot.onpkg)
        # and the engine stays inert afterwards
        decision = sim.engine.maybe_swap(int(trace.time[-1]) + 10)
        assert not decision.triggered
        assert "quarantined" in decision.reason

    @pytest.mark.parametrize("algo", ["N", "N-1", "live"])
    def test_degraded_latency_within_5pct_of_static(self, algo):
        """Acceptance: a fully degraded run serves the whole trace with
        average latency within 5% of the static-mapping baseline."""
        cfg = config(algo, max_consecutive_failures=1, data_safe_abort=False)
        n_epochs = 16
        trace = synthetic_trace(n=n_epochs * INTERVAL, seed=7)

        static = repro.HeterogeneousMainMemory(cfg, migrate=False).run(trace)

        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(self._abort_everything_plan(n_epochs))
        degraded = sim.run(trace)

        assert degraded.quarantined
        assert degraded.n_accesses == static.n_accesses == len(trace)
        ratio = degraded.average_latency / static.average_latency
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_failure_counter_resets_on_success(self):
        cfg = config("live", max_consecutive_failures=3)
        n_epochs = 12
        trace = synthetic_trace(n=n_epochs * INTERVAL, seed=3)
        # abort only even epochs: failures never become consecutive
        # enough to quarantine as long as odd-epoch swaps succeed
        plan = FaultPlan(
            [FaultEvent(epoch=e, kind=FaultKind.ABORT_SWAP)
             for e in range(0, n_epochs, 4)],
            seed=1,
        )
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(plan)
        result = sim.run(trace)
        assert not result.quarantined
        sim.table.check_invariants()


class TestAbortRollback:
    @pytest.mark.parametrize("algo", ["N", "N-1", "live"])
    @pytest.mark.parametrize("step", [0, 1, 5])
    def test_aborted_swap_leaves_table_untouched(self, algo, step, tiny_amap):
        from repro.migration.engine import MigrationEngine

        engine = MigrationEngine(
            tiny_amap,
            MigrationConfig(
                algorithm=algo, macro_page_bytes=1 * MB, swap_interval=100
            ),
        )
        hot = tiny_amap.n_onpkg_pages + 2
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot, dtype=np.int64),
            off_times=np.arange(5, dtype=np.int64),
            off_subblocks=np.zeros(5, dtype=np.int64),
        )
        before = engine.table.state_dict()
        engine.inject_abort(at_copy_step=step)
        decision = engine.maybe_swap(now=100)
        assert not decision.triggered
        assert "swap failed" in decision.reason
        assert engine.swaps_failed == 1
        after = engine.table.state_dict()
        for key in before:
            value = before[key]
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(value, after[key])
            else:
                assert value == after[key], key
        engine.table.audit()
        # a later hot page still migrates: one failure != quarantine
        # (wait out the data-safe recovery's copy-back stall window)
        later = max(300, engine.busy_until + 100)
        engine.observe_epoch(
            slots=np.array([], dtype=np.int64),
            slot_times=np.array([], dtype=np.int64),
            offpkg_pages=np.full(5, hot, dtype=np.int64),
            off_times=np.arange(later - 100, later - 95, dtype=np.int64),
            off_subblocks=np.zeros(5, dtype=np.int64),
        )
        assert engine.maybe_swap(now=later).triggered


# ----------------------------------------------------------------------
# audits, repair, watchdog, ECC
# ----------------------------------------------------------------------
class TestAuditAndRepair:
    def test_stuck_bits_detected_and_repaired(self):
        cfg = config("live", audit_interval=1)
        trace = synthetic_trace(n=4 * INTERVAL, seed=1)
        plan = FaultPlan(
            [
                FaultEvent(epoch=0, kind=FaultKind.STUCK_P_BIT, param=2),
                FaultEvent(epoch=1, kind=FaultKind.STUCK_F_BIT, param=3),
                FaultEvent(epoch=2, kind=FaultKind.BITMAP_CORRUPTION, param=5),
            ],
            seed=0,
        )
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(plan)
        result = sim.run(trace)

        kinds = summarize_events(result.degradation_events)
        assert kinds.get(AUDIT_FAILED, 0) >= 3
        assert kinds.get(TABLE_REPAIRED, 0) >= 3
        assert not result.quarantined  # SEUs are repairable corruption
        sim.table.audit()

    def test_audit_interval_zero_never_audits(self):
        cfg = config("live", audit_interval=0)
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(FaultPlan(
            [FaultEvent(epoch=0, kind=FaultKind.STUCK_P_BIT, param=1)], seed=0
        ))
        result = sim.run(synthetic_trace(n=2 * INTERVAL, seed=1))
        kinds = summarize_events(result.degradation_events)
        assert AUDIT_FAILED not in kinds

    def test_table_audit_rejects_stray_state(self, tiny_amap):
        from repro.migration.table import TranslationTable

        table = TranslationTable(tiny_amap)
        table.check_invariants()
        table.audit()
        table.f_bit[1] = True
        with pytest.raises(TranslationTableError):
            table.audit()
        fixes = table.repair()
        assert fixes
        table.audit()

    def test_repair_gives_up_on_duplicate_mapping(self, tiny_amap):
        from repro.migration.table import TranslationTable

        table = TranslationTable(tiny_amap)
        # two physical pages claiming the same machine page is
        # semantically ambiguous — repair must refuse to guess
        table.pair[1] = table.pair[0]
        with pytest.raises(TranslationTableError):
            table.repair()


class TestWatchdog:
    def test_raise_mode(self):
        cfg = config("live", epoch_cycle_budget=10, watchdog_action="raise")
        sim = repro.EpochSimulator(cfg)
        with pytest.raises(WatchdogError, match="budget"):
            sim.run(synthetic_trace(n=2 * INTERVAL, seed=0))

    def test_degrade_mode_records_and_finishes(self):
        cfg = config("live", epoch_cycle_budget=10, watchdog_action="degrade")
        sim = repro.EpochSimulator(cfg)
        result = sim.run(synthetic_trace(n=4 * INTERVAL, seed=0))
        assert result.n_accesses == 4 * INTERVAL
        kinds = summarize_events(result.degradation_events)
        assert kinds.get(WATCHDOG_BREACH) == 4

    def test_generous_budget_is_silent(self):
        cfg = config("live", epoch_cycle_budget=1 << 40)
        sim = repro.EpochSimulator(cfg)
        result = sim.run(synthetic_trace(n=2 * INTERVAL, seed=0))
        assert not result.degradation_events


class TestEcc:
    def test_transient_errors_fully_accounted(self):
        cfg = config("live")
        plan = FaultPlan(
            [FaultEvent(epoch=e, kind=FaultKind.DRAM_TRANSIENT, param=3)
             for e in range(6)],
            seed=4,
        )
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(plan)
        result = sim.run(synthetic_trace(n=6 * INTERVAL, seed=4))
        total = (
            result.dram_errors_corrected
            + result.dram_errors_retried
            + result.dram_errors_uncorrectable
        )
        assert total == 18  # every injected error has a verdict
        assert result.faults_injected == 6

    def test_ecc_is_seed_deterministic(self):
        def run():
            cfg = config("live")
            plan = FaultPlan(
                [FaultEvent(epoch=e, kind=FaultKind.DRAM_TRANSIENT, param=2)
                 for e in range(4)],
                seed=99,
            )
            sim = repro.EpochSimulator(cfg)
            sim.attach_faults(plan)
            return sim.run(synthetic_trace(n=4 * INTERVAL, seed=1))

        assert as_fields(run()) == as_fields(run())

    def test_ecc_errors_cost_cycles(self):
        cfg = config("live")
        clean = repro.EpochSimulator(cfg).run(synthetic_trace(n=2 * INTERVAL, seed=8))
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(FaultPlan(
            [FaultEvent(epoch=0, kind=FaultKind.DRAM_TRANSIENT, param=50)],
            seed=12,
        ))
        noisy = sim.run(synthetic_trace(n=2 * INTERVAL, seed=8))
        assert noisy.total_latency > clean.total_latency


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(Exception):
            ResilienceConfig(audit_interval=-1)
        with pytest.raises(Exception):
            ResilienceConfig(max_consecutive_failures=0)
        with pytest.raises(Exception):
            ResilienceConfig(watchdog_action="panic")

    def test_with_resilience_builder(self):
        cfg = config()
        tuned = cfg.with_resilience(audit_interval=7)
        assert tuned.resilience.audit_interval == 7
        assert tuned.migration == cfg.migration

    def test_report_table_renders(self):
        cfg = config(
            "live", max_consecutive_failures=1, data_safe_abort=False
        )
        n_epochs = 6
        sim = repro.EpochSimulator(cfg)
        sim.attach_faults(FaultPlan(
            [FaultEvent(epoch=e, kind=FaultKind.ABORT_SWAP)
             for e in range(n_epochs)],
            seed=0,
        ))
        result = sim.run(synthetic_trace(n=n_epochs * INTERVAL, seed=7))
        from repro.stats.report import resilience_table

        text = resilience_table(result).render()
        assert "quarantined" in text
        assert "faults injected" in text
