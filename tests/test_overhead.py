"""Tests for the hardware/OS cost models (Fig 10, Section III-B)."""

import pytest

from repro.errors import ConfigError
from repro.migration.overhead import (
    hardware_bits,
    os_assisted_update_cycles,
    translation_cycles,
)
from repro.units import GB, KB, MB


class TestFig10:
    def test_paper_reference_point(self):
        """1 GB at 4 MB pages: 7,168-bit table + 1,024-bit fill bitmap +
        256-bit clock map + 780-bit multi-queue = 9,228 bits."""
        cost = hardware_bits(1 * GB, 4 * MB)
        assert cost.n_entries == 256
        assert cost.bits_per_entry == 28
        assert cost.table_bits == 7168
        assert cost.fill_bitmap_bits == 1024
        assert cost.plru_bits == 256
        assert cost.multiqueue_bits == 780
        assert cost.total_bits == 9228

    def test_cost_explodes_at_fine_granularity(self):
        """Fig 10's shape: ~1000x more bits at 4 KB than at 4 MB."""
        coarse = hardware_bits(1 * GB, 4 * MB).total_bits
        fine = hardware_bits(1 * GB, 4 * KB).total_bits
        assert fine > 500 * coarse

    def test_monotone_decreasing_in_page_size(self):
        sizes = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB]
        totals = [hardware_bits(1 * GB, s).total_bits for s in sizes]
        assert all(a > b for a, b in zip(totals, totals[1:]))

    def test_rejects_page_larger_than_region(self):
        with pytest.raises(ConfigError):
            hardware_bits(1 * MB, 4 * MB)


class TestOsAssist:
    def test_update_cost_is_127_per_switch(self):
        assert os_assisted_update_cycles(1) == 127
        assert os_assisted_update_cycles(4) == 4 * 127

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            os_assisted_update_cycles(-1)


def test_translation_cycles_constant():
    assert translation_cycles(False) == 2
    assert translation_cycles(True) == 2
    assert translation_cycles(True, hw_cycles=3) == 3
