"""The stdlib Cobertura coverage gate (tools/check_coverage.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_coverage",
    Path(__file__).resolve().parent.parent / "tools" / "check_coverage.py",
)
check_coverage = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_coverage)


def cobertura(files: dict[str, list[tuple[int, int]]]) -> str:
    """Handcraft a minimal Cobertura report: filename -> (line, hits)."""
    classes = []
    for filename, lines in files.items():
        rows = "".join(
            f'<line number="{n}" hits="{h}"/>' for n, h in lines
        )
        classes.append(
            f'<class name="m" filename="{filename}"><methods/>'
            f"<lines>{rows}</lines></class>"
        )
    return (
        '<?xml version="1.0"?><coverage line-rate="0"><packages><package '
        f'name="p"><classes>{"".join(classes)}</classes></package>'
        "</packages></coverage>"
    )


@pytest.fixture
def write_xml(tmp_path):
    def _write(files):
        path = tmp_path / "coverage.xml"
        path.write_text(cobertura(files))
        return str(path)

    return _write


class TestCollect:
    def test_counts_covered_and_total_lines(self, write_xml):
        path = write_xml(
            {"src/repro/migration/engine.py": [(1, 3), (2, 0), (3, 1)]}
        )
        per_file = check_coverage.collect_line_rates(path)
        assert per_file == {"repro/migration/engine.py": (2, 3)}

    def test_src_prefix_and_backslashes_normalized(self, write_xml):
        path = write_xml({"src\\repro\\datamodel\\shadow.py": [(1, 1)]})
        per_file = check_coverage.collect_line_rates(path)
        assert per_file == {"repro/datamodel/shadow.py": (1, 1)}

    def test_unreadable_report_is_a_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            check_coverage.collect_line_rates(str(tmp_path / "absent.xml"))


class TestGate:
    def test_passes_at_the_floor(self, write_xml, capsys):
        path = write_xml(
            {
                "src/repro/migration/engine.py": [(n, 1) for n in range(9)]
                + [(9, 0)],
                "src/repro/datamodel/shadow.py": [(1, 1)],
                "src/repro/tenancy/domain.py": [(1, 1)],
            }
        )
        assert check_coverage.main([path, "--min-percent", "90"]) == 0
        out = capsys.readouterr().out
        assert "repro/migration: 9/10 lines, 90.0%" in out

    def test_fails_below_the_floor(self, write_xml, capsys):
        path = write_xml(
            {
                "src/repro/migration/engine.py": [(1, 1), (2, 0)],
                "src/repro/datamodel/shadow.py": [(1, 1)],
                "src/repro/tenancy/domain.py": [(1, 1)],
            }
        )
        assert check_coverage.main([path, "--min-percent", "90"]) == 1
        assert "50.0% < 90%" in capsys.readouterr().err

    def test_unmeasured_target_fails_loudly(self, write_xml, capsys):
        path = write_xml({"src/repro/migration/engine.py": [(1, 1)]})
        assert check_coverage.main([path]) == 1
        assert "no lines measured" in capsys.readouterr().err

    def test_explicit_targets_override_defaults(self, write_xml):
        path = write_xml({"src/repro/core/simulator.py": [(1, 1)]})
        rc = check_coverage.main([path, "--target", "repro/core"])
        assert rc == 0

    def test_other_trees_do_not_dilute_a_target(self, write_xml):
        # a fully-covered unrelated tree must not mask a failing target
        path = write_xml(
            {
                "src/repro/core/simulator.py": [(n, 1) for n in range(100)],
                "src/repro/migration/engine.py": [(1, 0), (2, 0)],
                "src/repro/datamodel/shadow.py": [(1, 1)],
                "src/repro/tenancy/domain.py": [(1, 1)],
            }
        )
        assert check_coverage.main([path]) == 1
